"""Parallel suite execution engine with watchdog, retry, and keep-going.

Per-(workload, config) simulations are embarrassingly parallel — nothing is
shared between two runs except the on-disk result cache.  This module fans
a list of jobs out over supervised worker processes while keeping every
cache interaction in the parent process:

- the parent checks the :class:`~repro.sim.cache.ResultCache` first, so
  workers only ever simulate genuine misses (corrupt entries are evicted
  by the cache and re-simulated here);
- duplicate in-flight keys are deduplicated before submission (two figures
  asking for the same (workload, config, length, warmup) share one run);
- workers return plain result dicts over a pipe; the parent writes them to
  the cache **incrementally**, so concurrent workers never race on disk
  and an interrupted run keeps everything already finished.

Resilience (one worker process per job, supervised by the parent):

- **Watchdog**: every job gets a soft wall-clock deadline (``job_timeout``
  / ``REPRO_JOB_TIMEOUT``; default derived from the instruction count; 0
  disables).  A worker that blows its deadline is killed.
- **Retry with backoff**: crashed or timed-out jobs are retried with a
  fresh worker up to ``retries`` times (``REPRO_JOB_RETRIES``, default 2),
  with exponential backoff (``REPRO_RETRY_BACKOFF`` base seconds, default
  0.5).  Deterministic Python exceptions are *not* retried — the same
  input would fail the same way.
- **Keep-going**: with ``keep_going=True`` a terminal failure is recorded
  in the :class:`TimingReport`'s failure manifest (workload, config,
  classification ``crash``/``timeout``/``deadlock``/``corrupt_cache``/
  ``error``, attempts, traceback detail) and its result slot is ``None``;
  the default re-raises a :class:`WorkerError` after shutting the workers
  down.
- **SIGINT-safe finalization**: Ctrl-C sets a flag, active workers are
  terminated, and ``KeyboardInterrupt`` is re-raised *after* the orderly
  shutdown — every completed job is already committed to the cache, so a
  re-run (``repro suite --resume``) simulates only the remainder.
- **SIGTERM graceful drain**: a service manager's stop signal finishes
  the in-flight chunks (bounded by ``REPRO_DRAIN_TIMEOUT`` seconds,
  default 30), journals their results to the cache, records every
  not-started or timed-out job as ``aborted`` in the manifest, and
  returns normally with ``report.drained`` set — the CLI maps that to
  exit code 4.
- **Fault injection**: :mod:`repro.sim.faults` (``REPRO_FAULT``) drives
  every one of these paths deterministically in CI.

``shards=N`` (or ``REPRO_SHARDS``) swaps the worker-per-job fan-out for
the supervised long-lived shard pool in :mod:`repro.sim.scheduler`
(heartbeat health checks, quarantine, crash-loop backoff); results are
byte-identical between the two engines.

The worker entry point is a module-level function and every job payload is
picklable, so the engine is safe under the ``spawn`` start method (macOS /
Windows); on platforms that offer ``fork`` it is used by default because
worker start-up is substantially cheaper.  Override with
``REPRO_MP_START=spawn|fork|forkserver``.

Knobs:

- ``REPRO_JOBS`` — worker count (also ``--jobs`` on the CLI); default
  ``os.cpu_count()``.
- ``REPRO_MP_START`` — multiprocessing start method.
- ``REPRO_PROGRESS`` — when set (non-empty, not "0"), stream per-job
  progress lines to stderr even if no explicit callback is given.
- ``REPRO_JOB_TIMEOUT`` / ``REPRO_JOB_RETRIES`` / ``REPRO_RETRY_BACKOFF``
  — watchdog deadline seconds, retry budget, backoff base seconds.

Results are deterministic and byte-identical to serial execution: each
simulation is seeded purely by (workload name, config), and the returned
mapping is assembled in job order, not completion order.
"""

import multiprocessing
import os
import shutil
import signal
import sys
import tempfile
import threading
import time
import traceback
from collections import deque
from multiprocessing.connection import wait as _wait_connections

from repro.obs.export import sort_events, write_jsonl
from repro.obs.tracer import trace_spec_from_env
from repro.sim import faults
from repro.sim.cache import default_cache
from repro.core.batch_core import (
    batch_detail_env_enabled, batch_detail_supported, run_interval_lanes,
)
from repro.emu.batch import batch_warm_env_enabled
from repro.sim.checkpoint import (
    CheckpointStore, default_checkpoint_store, ensure_checkpoints,
    ensure_checkpoints_batch, warm_fingerprint,
)
from repro.sim.runner import SimResult, simulate, simulate_interval
from repro.sim.sampling import (
    SamplingPlan, aggregate_intervals, normalize_spec, sampling_suffix,
)
from repro.workloads.suite import build_workload, workload_category

#: Failure-manifest classifications.
CLASS_CRASH = "crash"              # worker process died / injected crash
CLASS_TIMEOUT = "timeout"          # watchdog killed a hung worker
CLASS_DEADLOCK = "deadlock"        # the core's own deadlock detector fired
CLASS_CORRUPT_CACHE = "corrupt_cache"  # checksum eviction forced a re-run
CLASS_CORRUPT_CHECKPOINT = "corrupt_checkpoint"  # warm state re-derived
CLASS_ERROR = "error"              # deterministic Python exception
CLASS_ABORTED = "aborted"          # graceful drain stopped it (not a failure)

#: Only failures that a fresh worker might not reproduce are retried.
RETRYABLE = frozenset((CLASS_CRASH, CLASS_TIMEOUT))

#: Failure-manifest schema version, carried as ``manifest_version`` in
#: ``TimingReport.as_dict()`` and in every ``--out`` payload so archived
#: manifests are self-describing.  v1: the implicit pre-versioned schema
#: (crash/timeout/deadlock/corrupt_*/error records).  v2: adds the field
#: itself, the ``aborted`` classification (SIGTERM drain), and the
#: report's ``drained`` flag.
MANIFEST_VERSION = 2


class WorkerError(RuntimeError):
    """A simulation job failed inside a worker.

    Raised in place of the worker's bare traceback so the parent process
    reports *which* (workload, config) job died — a pool of 65 workloads
    otherwise surfaces an anonymous ``RemoteTraceback``.  Picklable by
    construction (``__reduce__``, which carries all four constructor
    arguments including the root exception class name), so the traceback
    detail survives any number of pickle round-trips.
    """

    def __init__(self, workload, config_name, detail, root_cause=None):
        self.workload = workload
        self.config_name = config_name
        self.detail = detail
        self.root_cause = root_cause
        super(WorkerError, self).__init__(
            "simulation job failed (workload=%s, config=%s%s)\n%s"
            % (workload, config_name,
               ", root cause %s" % root_cause if root_cause else "", detail)
        )

    def __reduce__(self):
        return (WorkerError,
                (self.workload, self.config_name, self.detail, self.root_cause))


def default_jobs():
    """Worker count: ``REPRO_JOBS`` env override, else ``os.cpu_count()``."""
    env = os.environ.get("REPRO_JOBS")
    if env:
        return max(1, int(env))
    return os.cpu_count() or 1


def start_method():
    """The multiprocessing start method the engine will use."""
    env = os.environ.get("REPRO_MP_START")
    if env:
        return env
    return "fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn"


def default_retries():
    """Retry budget per job: ``REPRO_JOB_RETRIES``, default 2."""
    env = os.environ.get("REPRO_JOB_RETRIES")
    if env:
        return max(0, int(env))
    return 2


def retry_backoff_base():
    """Backoff base seconds (doubles per retry): ``REPRO_RETRY_BACKOFF``."""
    env = os.environ.get("REPRO_RETRY_BACKOFF")
    if env:
        return max(0.0, float(env))
    return 0.5


def default_shards():
    """Shard-pool width: ``REPRO_SHARDS``, or None (worker-per-job)."""
    env = os.environ.get("REPRO_SHARDS")
    if env:
        return max(1, int(env))
    return None


def drain_timeout_default():
    """Seconds a SIGTERM drain waits for in-flight jobs
    (``REPRO_DRAIN_TIMEOUT``, default 30; 0 aborts immediately)."""
    env = os.environ.get("REPRO_DRAIN_TIMEOUT")
    if env:
        try:
            return max(0.0, float(env))
        except ValueError:
            pass
    return 30.0


def resolve_job_timeout(job_timeout, length):
    """Watchdog deadline in seconds for one job, or None (disabled).

    Precedence: explicit argument, then ``REPRO_JOB_TIMEOUT``, then a
    default derived from the instruction count — generous enough that a
    healthy run never trips it, tight enough that a deadlocked event loop
    is killed in minutes, not hours.  Zero or negative disables.
    """
    if job_timeout is not None:
        return job_timeout if job_timeout > 0 else None
    env = os.environ.get("REPRO_JOB_TIMEOUT")
    if env:
        try:
            value = float(env)
        except ValueError:
            value = 0.0
        return value if value > 0 else None
    return max(60.0, length / 500.0)


def classify_failure(detail, root_cause=None):
    """Map a worker-side traceback to a manifest classification."""
    if root_cause == "InjectedCrash":
        return CLASS_CRASH
    if detail and "likely deadlock" in detail:
        return CLASS_DEADLOCK
    return CLASS_ERROR


def _env_progress_enabled():
    value = os.environ.get("REPRO_PROGRESS", "")
    return value not in ("", "0")


def _stderr_progress(done, total, workload, config_name, seconds, source):
    sys.stderr.write(
        "[%*d/%d] %-24s %-14s %6.2fs  %s\n"
        % (len(str(total)), done, total, workload, config_name, seconds, source)
    )
    sys.stderr.flush()


class TimingReport(object):
    """Wall-clock and failure accounting for one :func:`run_jobs` call."""

    __slots__ = (
        "wall_seconds",
        "jobs_total",
        "jobs_simulated",
        "jobs_deduplicated",
        "cache_hits",
        "workers",
        "instructions_simulated",
        "jobs_failed",
        "failures",
        "drained",
    )

    def __init__(self, wall_seconds, jobs_total, jobs_simulated,
                 jobs_deduplicated, cache_hits, workers,
                 instructions_simulated, jobs_failed=0, failures=None,
                 drained=False):
        self.wall_seconds = wall_seconds
        self.jobs_total = jobs_total
        self.jobs_simulated = jobs_simulated
        self.jobs_deduplicated = jobs_deduplicated
        self.cache_hits = cache_hits
        self.workers = workers
        self.instructions_simulated = instructions_simulated
        #: Jobs that exhausted their retries (their result slots are None).
        self.jobs_failed = jobs_failed
        #: Failure manifest: one dict per incident — terminal failures plus
        #: recovered ones (successful retries, corrupt-cache evictions),
        #: the latter flagged ``recovered=True``.
        self.failures = failures if failures is not None else []
        #: True when a SIGTERM drain cut the run short: in-flight chunks
        #: finished and were journaled, the rest is ``aborted`` in the
        #: manifest, and the CLI exits 4.
        self.drained = drained

    @property
    def instructions_per_second(self):
        if self.wall_seconds <= 0:
            return 0.0
        return self.instructions_simulated / self.wall_seconds

    def as_dict(self):
        data = {name: getattr(self, name) for name in self.__slots__}
        data["instructions_per_second"] = self.instructions_per_second
        data["manifest_version"] = MANIFEST_VERSION
        return data

    def format(self):
        lines = [
            "suite timing: %d jobs in %.2fs (%d simulated, %d cache hits, "
            "%d deduplicated) on %d worker%s"
            % (self.jobs_total, self.wall_seconds, self.jobs_simulated,
               self.cache_hits, self.jobs_deduplicated, self.workers,
               "" if self.workers == 1 else "s"),
        ]
        if self.jobs_simulated:
            lines.append(
                "  %d instructions simulated, %.0f instr/s aggregate"
                % (self.instructions_simulated, self.instructions_per_second)
            )
        if self.jobs_failed:
            lines.append(
                "  %d job%s failed terminally (see the failure manifest)"
                % (self.jobs_failed, "" if self.jobs_failed == 1 else "s")
            )
        if self.drained:
            lines.append(
                "  run drained on SIGTERM: in-flight chunks finished and "
                "committed, the rest is marked aborted in the manifest"
            )
        return "\n".join(lines)

    def __repr__(self):
        return "<TimingReport %d jobs %.2fs>" % (self.jobs_total, self.wall_seconds)


def format_failures(failures):
    """Render a failure manifest for humans (one line per incident)."""
    if not failures:
        return "no failures"
    lines = ["failure manifest (%d incident%s):"
             % (len(failures), "" if len(failures) == 1 else "s")]
    for record in failures:
        lines.append(
            "  [%s] %s under %s: %d attempt%s, %s%s"
            % (record["classification"], record["workload"], record["config"],
               record["attempts"], "" if record["attempts"] == 1 else "s",
               "recovered" if record["recovered"] else "TERMINAL",
               " (root cause %s)" % record["root_cause"]
               if record.get("root_cause") else "")
        )
    return "\n".join(lines)


def _run_job(item):
    """Worker body: simulate one job.

    ``item`` is ``(key, job, trace_path, job_index, attempt, in_child)``.
    Module-level (not a closure) so it can be pickled by reference under
    the ``spawn`` start method.  Returns the JSON-friendly result payload —
    never a :class:`SimResult` — to keep the IPC surface minimal.

    When ``trace_path`` is set (REPRO_TRACE enabled), the worker attaches a
    tracer and streams the job's sorted event log to that per-job file; the
    parent merges the files in job order after the run drains.  Failures
    are re-raised as :class:`WorkerError` carrying the (workload, config)
    key plus the worker-side traceback and root exception class.
    """
    key, job, trace_path = item[:3]
    workload, config, length, warmup = job[:4]
    sampling = job[4] if len(job) > 4 else None
    job_index, attempt, in_child = item[3:]
    started = time.perf_counter()
    try:
        faults.fire_worker_faults(job_index, attempt, in_child)
        if sampling is not None:
            # One measurement interval of a sampled cell.  The worker
            # builds its own store handle from the directory in the spec
            # (a plain string, so the payload pickles under spawn).
            interval = sampling["interval"]
            store = (
                CheckpointStore(sampling["checkpoint_dir"])
                if sampling.get("checkpoint_dir") else None
            )
            result = simulate_interval(
                workload, config, length=length,
                start=interval["start"], measure=interval["measure"],
                ramp=interval["ramp"], index=interval["index"],
                checkpoint_store=store,
            )
            return key, result.data, time.perf_counter() - started
        tracer = None
        if trace_path is not None:
            spec = trace_spec_from_env()
            tracer = spec.build_tracer() if spec is not None else None
        result = simulate(workload, config, length=length, warmup=warmup,
                          tracer=tracer)
        if tracer is not None:
            write_jsonl(sort_events(tracer.events), trace_path)
    except Exception as exc:
        name = workload if isinstance(workload, str) else workload.name
        raise WorkerError(name, config.name, traceback.format_exc(),
                          root_cause=type(exc).__name__)
    return key, result.data, time.perf_counter() - started


def _job_worker(item, conn):
    """Child-process wrapper: run the job, report over ``conn``, exit.

    Protocol: ``("ok", key, data, seconds)`` on success, ``("err",
    workload, config_name, detail, root_cause)`` on a handled failure.  A
    worker that dies without sending anything (hard crash, kill) is
    detected by the parent as EOF on the pipe.
    """
    try:
        try:
            key, data, seconds = _run_job(item)
            conn.send(("ok", key, data, seconds))
        except WorkerError as err:
            conn.send(("err", err.workload, err.config_name, err.detail,
                       err.root_cause))
    except BaseException:
        pass  # broken pipe / interpreter teardown: parent sees EOF
    finally:
        try:
            conn.close()
        except OSError:
            pass


class _PendingJob(object):
    """Supervisor-side state for one deduplicated cache miss."""

    __slots__ = ("key", "job", "index", "trace_path", "tries", "next_start",
                 "last_class", "last_detail", "last_root", "corrupt_record")

    def __init__(self, key, job, index, trace_path):
        self.key = key
        self.job = job
        self.index = index
        self.trace_path = trace_path
        self.tries = 0          # completed (failed) attempts so far
        self.next_start = 0.0   # backoff eligibility (time.monotonic)
        self.last_class = None
        self.last_detail = None
        self.last_root = None
        self.corrupt_record = None  # manifest entry for a cache eviction

    @property
    def workload_name(self):
        workload = self.job[0]
        return workload if isinstance(workload, str) else workload.name

    @property
    def config_name(self):
        return self.job[1].name


class _SignalGuard(object):
    """Turn SIGINT/SIGTERM into flags so run_jobs controls the shutdown.

    SIGINT (``triggered``) means abort now: active workers are terminated
    and ``KeyboardInterrupt`` re-raised after the orderly shutdown.
    SIGTERM (``draining``) means graceful drain: stop launching, let
    in-flight chunks finish (bounded by ``REPRO_DRAIN_TIMEOUT``), commit
    their results, mark the rest ``aborted``, and return normally.

    Only installs handlers in the main thread of the main interpreter
    (``signal.signal`` raises ValueError elsewhere); otherwise the flags
    simply never trip and Python's default behaviour applies.
    """

    def __init__(self, sigint=True):
        self.triggered = False
        self.draining = False
        self._sigint = sigint
        self._previous = {}

    def __enter__(self):
        if threading.current_thread() is threading.main_thread():
            try:
                if self._sigint:
                    self._previous[signal.SIGINT] = signal.signal(
                        signal.SIGINT, self._handle_int)
                self._previous[signal.SIGTERM] = signal.signal(
                    signal.SIGTERM, self._handle_term)
            except ValueError:
                pass
        return self

    def _handle_int(self, _signum, _frame):
        self.triggered = True

    def _handle_term(self, _signum, _frame):
        self.draining = True

    def __exit__(self, *_exc_info):
        for signum, previous in self._previous.items():
            signal.signal(signum, previous)
        return False


def _stop_worker(process):
    """Terminate (then kill) a worker and reap it."""
    if process.is_alive():
        process.terminate()
        process.join(1.0)
        if process.is_alive():
            process.kill()
            process.join(1.0)
    else:
        process.join(0)


def run_jobs(jobs, cache=None, max_workers=None, progress=None,
             job_timeout=None, retries=None, keep_going=False,
             batch_warm=None, batch_detail=None, shards=None):
    """Run (workload, config, length, warmup) jobs through the cache and a
    supervised worker-per-job engine.

    Args:
        jobs: sequence of ``(workload, config, length, warmup)`` tuples.
        cache: a :class:`~repro.sim.cache.ResultCache`; defaults to the
            shared on-disk cache.  Completed jobs are committed to it
            incrementally (checkpointing), so an interrupted run resumes
            from where it stopped.
        max_workers: concurrent worker cap; defaults to
            :func:`default_jobs`.  The supervisor is skipped entirely
            (plain in-process loop) when one worker suffices, so
            ``REPRO_JOBS=1`` gives the exact serial behaviour.
        progress: optional callback
            ``(done, total, workload, config_name, seconds, source)`` with
            ``source`` one of ``"cache"``, ``"run"``, ``"dedup"``,
            ``"retry"``, ``"fail"``.  When omitted, ``REPRO_PROGRESS=1``
            enables a stderr printer.
        job_timeout: watchdog deadline seconds per attempt (None = env /
            derived default, 0 = disabled); see :func:`resolve_job_timeout`.
        retries: extra attempts for crashed/timed-out jobs (None = env
            default 2).  Deterministic exceptions are never retried.
        keep_going: record terminal failures in the report's manifest and
            return ``None`` in their result slots instead of raising.
        batch_warm: perform the parent-side prewarm through the batched
            SoA engine (:mod:`repro.emu.batch`) — all missing interval
            checkpoints across the whole job matrix are written by one
            lockstep engine run instead of one scalar pass per
            (workload, warm-fingerprint).  Bit-exact with the scalar
            prewarm.  ``None`` (default) defers to ``REPRO_BATCH_WARM``.
        batch_detail: run sampled-interval cache misses through the batched
            detailed core (:mod:`repro.core.batch_core`) — same-trace
            interval jobs become lockstep lanes executed in the parent
            (K intervals x M configs of one workload are natural
            lanemates), with per-lane payloads byte-identical to the
            scalar worker path.  Jobs the batched core cannot model (VP
            configs, whole-trace runs) fall through to the worker
            fan-out unchanged.  ``None`` defers to ``REPRO_BATCH_DETAIL``.
        shards: run cache misses through ``shards`` long-lived shard
            processes (:class:`repro.sim.scheduler.ShardPool` — heartbeat
            health checks, quarantine, crash-loop backoff) instead of one
            worker process per job.  Byte-identical results.  ``None``
            defers to ``REPRO_SHARDS`` (unset = worker-per-job).

    Returns:
        ``(results, report)`` — ``results`` is a list of
        :class:`~repro.sim.runner.SimResult` (or ``None`` for failed jobs
        under ``keep_going``) in job order, ``report`` a
        :class:`TimingReport` carrying the failure manifest.
    """
    jobs = list(jobs)
    cache = cache if cache is not None else default_cache()
    if max_workers is None:
        max_workers = default_jobs()
    if retries is None:
        retries = default_retries()
    if batch_warm is None:
        batch_warm = batch_warm_env_enabled()
    if batch_detail is None:
        batch_detail = batch_detail_env_enabled()
    if shards is None:
        shards = default_shards()
    backoff = retry_backoff_base()
    if progress is None and _env_progress_enabled():
        progress = _stderr_progress
    started = time.perf_counter()
    total = len(jobs)

    # REPRO_TRACE: bypass the result cache so every job actually simulates
    # (a cache hit would silently produce no events), making the merged
    # event log a pure function of the job list — byte-identical between
    # serial and parallel runs, whatever the cache held beforehand.
    trace_spec = trace_spec_from_env()

    # Normalize to 5-tuples (workload, config, length, warmup, sampling).
    # Sampling is silently dropped where it cannot apply: under tracing
    # (the event log must cover the whole trace) and for VP configs (VP
    # tables train on pipeline events the functional gaps do not model).
    normalized = []
    for job in jobs:
        workload, config, length, warmup = job[:4]
        spec = job[4] if len(job) > 4 else None
        if spec is not None and (trace_spec is not None or config.vp.enabled):
            spec = None
        if spec is not None:
            spec = normalize_spec(spec)
        normalized.append((workload, config, length, warmup, spec))

    keys = [
        cache.key(w, c, lgth, wrm)
        + (sampling_suffix(spec) if spec is not None else "")
        for (w, c, lgth, wrm, spec) in normalized
    ]
    by_key = {}        # key -> SimResult (hits now, fills later; None=failed)
    pending = {}       # key -> job: deduplicated in-flight misses
    cache_hits = 0
    deduplicated = 0
    done = 0
    cache.pop_evictions()  # stale incidents from earlier runs are not ours
    for key, job in zip(keys, normalized):
        if key in by_key:
            deduplicated += 1
            done += 1
            if progress:
                progress(done, total, job[0], job[1].name, 0.0, "dedup")
            continue
        if key in pending:
            deduplicated += 1
            continue
        cached = cache.get(key) if trace_spec is None else None
        if cached is not None:
            by_key[key] = cached
            cache_hits += 1
            done += 1
            if progress:
                progress(done, total, job[0], job[1].name, 0.0, "cache")
        else:
            pending[key] = job

    # Expand sampled cells into per-interval work units.  Each interval is
    # an independently schedulable, independently cached job keyed
    # ``<cell-key>-iNNN``; the cell's aggregate is assembled (and cached
    # under the cell key) after the fan-out drains.  ``total`` grows so the
    # progress denominator counts interval units, not cells.
    store = default_checkpoint_store()
    failures = []
    interval_cells = {}  # cell_key -> {"spec", "interval_keys"}
    work = {}            # key -> 5-tuple handed to _PendingJob
    prewarm = {}         # (name, trace-or-None, length, fp) -> set(positions)
    restore_only = {}    # (name, length) -> all miss work restores from store
    for key, job in pending.items():
        workload, config, length, warmup, spec = job
        build_key = (
            (workload, length) if isinstance(workload, str)
            else (workload.name, length)
        )
        if spec is None:
            work[key] = job
            restore_only[build_key] = False
            continue
        trace_length = length if isinstance(workload, str) else len(workload)
        plan = SamplingPlan(config, trace_length, warmup, spec)
        interval_keys = []
        for i in range(plan.samples):
            interval_key = key + "-i%03d" % i
            interval_keys.append(interval_key)
            cached = cache.get(interval_key)
            if cached is not None:
                by_key[interval_key] = cached
                done += 1
                total += 1
                if progress:
                    progress(done, total, job[0], config.name, 0.0, "cache")
                continue
            total += 1
            work[interval_key] = (workload, config, length, warmup, {
                "interval": {
                    "index": i,
                    "start": plan.starts[i],
                    "measure": plan.measure,
                    "ramp": plan.ramps[i],
                },
                "checkpoint_dir": store.directory if store is not None
                else None,
            })
            functional = plan.functionals[i]
            covered = store is not None and functional > 0
            restore_only[build_key] = (
                restore_only.get(build_key, True) and covered
            )
            if covered:
                name = workload if isinstance(workload, str) else workload.name
                trace = None if isinstance(workload, str) else workload
                group = prewarm.setdefault(
                    (name, trace, trace_length, warm_fingerprint(config)),
                    (config, set()),
                )
                group[1].add(functional)
        total -= 1  # the cell itself is replaced by its interval units
        interval_cells[key] = {"spec": spec, "interval_keys": interval_keys}

    # Parent-side prewarm: ONE resumable functional pass per (workload,
    # warm-fingerprint) writes every missing interval checkpoint before the
    # fan-out, so workers only ever restore — a 9-config sweep warms each
    # workload once, a repeat sweep zero times.
    if store is not None:
        store.pop_evictions()
        ordered = sorted(prewarm.items(),
                         key=lambda item: (item[0][0], item[0][3]))

        def _warm_incident(name, config_name, reason):
            failures.append({
                "workload": name,
                "config": config_name,
                "job_index": -1,
                "classification": CLASS_CORRUPT_CHECKPOINT,
                "attempts": 1,
                "recovered": True,  # re-warmed on the spot
                "detail": reason,
                "root_cause": None,
            })

        if batch_warm and ordered:
            # Batched lane: every prewarm group becomes one lane of a
            # single SoA engine run — groups sharing a trace advance in
            # lockstep, lanes sharing cache geometry share one cache
            # advance.  Incidents are attributed back through the store
            # key (workload-length-functional-fingerprint).
            config_by_fp = {
                (name, fp): config.name
                for (name, _t, _l, fp), (config, _p) in ordered
            }
            ensure_checkpoints_batch(
                [(trace, name, config, trace_length, sorted(positions))
                 for (name, trace, trace_length, _fp), (config, positions)
                 in ordered],
                store,
            )
            for incident in store.pop_evictions():
                name, _length, _pos, fp = incident["key"].rsplit("-", 3)
                _warm_incident(name, config_by_fp.get((name, fp), "?"),
                               incident["reason"])
        else:
            for (name, trace, trace_length, _fp), (config, positions) \
                    in ordered:
                ensure_checkpoints(trace, name, config, trace_length,
                                   sorted(positions), store)
                for incident in store.pop_evictions():
                    _warm_incident(name, config.name, incident["reason"])

    # Batched detailed lane: sampled-interval misses whose config the
    # batched core can model leave the worker fan-out and regroup into
    # same-trace lockstep lanes executed in the parent.  (Tracing never
    # reaches here: sampling specs are dropped under REPRO_TRACE above.)
    batch_groups = {}   # (name, length) -> [(key, job, trace), ...]
    if batch_detail:
        for key, job in list(work.items()):
            workload, config, length, warmup, spec = job
            if not (spec and "interval" in spec):
                continue
            if isinstance(workload, str):
                try:
                    trace = build_workload(workload, length=length)
                except Exception:
                    continue  # let the worker fail with (workload, config)
                name = workload
            else:
                trace, name = workload, workload.name
            if not batch_detail_supported(config, trace):
                continue
            batch_groups.setdefault((name, length), []).append(
                (key, job, trace))
            del work[key]

    trace_dir = None
    if trace_spec is not None and work:
        trace_dir = tempfile.mkdtemp(prefix="repro-trace-")

    def _trace_path(index):
        if trace_dir is None:
            return None
        return os.path.join(trace_dir, "job-%06d.jsonl" % index)

    miss_jobs = [
        _PendingJob(key, job, index, _trace_path(index))
        for index, (key, job) in enumerate(work.items())
    ]
    batch_pjs = []
    for (name, _length), entries in sorted(batch_groups.items()):
        for key, job, _trace in entries:
            batch_pjs.append(
                _PendingJob(key, job, len(miss_jobs) + len(batch_pjs), None))

    # Corrupt entries evicted during the scan above: record the incident,
    # flip it to recovered once the re-simulation lands.
    by_miss_key = {pj.key: pj for pj in miss_jobs}
    by_miss_key.update({pj.key: pj for pj in batch_pjs})
    for incident in cache.pop_evictions():
        pj = by_miss_key.get(incident["key"])
        if pj is None:
            continue
        record = {
            "workload": pj.workload_name,
            "config": pj.config_name,
            "job_index": pj.index,
            "classification": CLASS_CORRUPT_CACHE,
            "attempts": 0,
            "recovered": False,
            "detail": incident["reason"],
            "root_cause": None,
        }
        pj.corrupt_record = record
        failures.append(record)

    def _record_success(pj, data, seconds):
        nonlocal done
        result = SimResult(data)
        if trace_spec is None:
            cache.put(pj.key, result)  # parent-only, incremental commit
        by_key[pj.key] = result
        done += 1
        if pj.corrupt_record is not None:
            pj.corrupt_record["recovered"] = True
            pj.corrupt_record["attempts"] = pj.tries + 1
        if pj.tries:
            # Recovered after failed attempts: an incident worth a record,
            # but not a terminal failure.
            failures.append({
                "workload": pj.workload_name,
                "config": pj.config_name,
                "job_index": pj.index,
                "classification": pj.last_class,
                "attempts": pj.tries + 1,
                "recovered": True,
                "detail": pj.last_detail,
                "root_cause": pj.last_root,
            })
        if progress:
            progress(done, total, data["workload"], data["config"],
                     seconds, "run")

    def _record_terminal(pj):
        nonlocal done
        failures.append({
            "workload": pj.workload_name,
            "config": pj.config_name,
            "job_index": pj.index,
            "classification": pj.last_class,
            "attempts": pj.tries,
            "recovered": False,
            "detail": pj.last_detail,
            "root_cause": pj.last_root,
        })
        by_key[pj.key] = None
        done += 1
        if progress:
            progress(done, total, pj.workload_name, pj.config_name,
                     0.0, "fail")

    def _record_aborted(pj, detail):
        """A SIGTERM drain stopped this job before it could finish."""
        nonlocal done
        failures.append({
            "workload": pj.workload_name,
            "config": pj.config_name,
            "job_index": pj.index,
            "classification": CLASS_ABORTED,
            "attempts": pj.tries,
            "recovered": False,
            "detail": detail,
            "root_cause": None,
        })
        by_key[pj.key] = None
        done += 1
        if progress:
            progress(done, total, pj.workload_name, pj.config_name,
                     0.0, "fail")

    workers = max(1, min(max_workers, len(miss_jobs)))
    if shards is not None and miss_jobs:
        workers = max(1, min(shards, len(miss_jobs)))
    if workers > 1 and start_method() == "fork":
        # Trace reuse across configs: a matrix run names each workload once
        # per config, but the trace depends only on (workload, length).
        # Building every unique trace in the parent *before* the fork lets
        # all workers inherit the populated build_workload lru_cache via
        # copy-on-write pages instead of regenerating it per job.
        unique = {
            (pj.job[0], pj.job[2]) for pj in miss_jobs
            if isinstance(pj.job[0], str)
        }
        for name, length in sorted(unique):
            if restore_only.get((name, length)):
                # Every miss job for this workload restores its warm state
                # from an existing checkpoint: skip the serial parent-side
                # build and let the workers build the trace concurrently
                # (the prewarm pass above never touched it, so there is no
                # populated lru_cache entry to inherit anyway).
                continue
            try:
                build_workload(name, length=length)
            except Exception:
                # Best-effort warm-up only: an invalid job must fail inside
                # its worker, where it is wrapped in a WorkerError naming
                # the (workload, config) that died.
                pass
    fatal = None
    drained = False
    try:
        # Parent-side batched detailed lanes: one lockstep engine call per
        # trace group.  Lane failures are deterministic (the scalar core
        # would deadlock identically), so they are terminal — never
        # retried — and classified through the same message keys as
        # worker failures.
        batch_index = {pj.key: pj for pj in batch_pjs}
        for (name, _length), entries in sorted(batch_groups.items()):
            trace = entries[0][2]
            category = (workload_category(name)
                        if isinstance(entries[0][1][0], str)
                        else trace.category)
            specs = []
            for key, job, _trace in entries:
                interval = job[4]["interval"]
                specs.append({
                    "config": job[1],
                    "start": interval["start"],
                    "measure": interval["measure"],
                    "ramp": interval["ramp"],
                    "index": interval["index"],
                })
            group_started = time.perf_counter()
            outs = run_interval_lanes(trace, name, category, specs,
                                      checkpoint_store=store)
            seconds = (time.perf_counter() - group_started) / len(entries)
            for (key, job, _trace), out in zip(entries, outs):
                pj = batch_index[key]
                if isinstance(out, Exception):
                    detail = "%s: %s" % (type(out).__name__, out)
                    pj.tries = 1
                    pj.last_class = classify_failure(detail)
                    pj.last_detail = detail
                    pj.last_root = type(out).__name__
                    if keep_going:
                        _record_terminal(pj)
                        continue
                    raise WorkerError(pj.workload_name, pj.config_name,
                                      detail, root_cause=pj.last_root)
                _record_success(pj, out.data, seconds)
        if shards is not None and miss_jobs:
            # Shard-pool path: long-lived supervised shard processes with
            # heartbeat health checks (see repro.sim.scheduler).  Imported
            # lazily — the scheduler imports this module's worker protocol.
            from repro.sim.scheduler import ShardPool

            def _on_retry(pj):
                if progress:
                    progress(done, total, pj.workload_name, pj.config_name,
                             0.0, "retry")

            pool = ShardPool(workers, job_timeout=job_timeout,
                             retries=retries, keep_going=keep_going)
            with _SignalGuard() as guard:
                pool.execute(miss_jobs, guard=guard,
                             on_success=_record_success,
                             on_terminal=_record_terminal,
                             on_aborted=_record_aborted,
                             on_retry=_on_retry)
                drained = guard.draining
                if guard.triggered:
                    raise KeyboardInterrupt
        elif workers == 1:
            # In-process path: no supervisor, identical results.  Crashes
            # injected here raise InjectedCrash (never os._exit) and are
            # retried in place; there is no watchdog — a hang would hang
            # the caller, which is exactly the serial contract.  SIGINT
            # keeps its default immediate KeyboardInterrupt (the serial
            # contract again); SIGTERM drains — the in-flight job finishes
            # and commits, the rest is marked aborted.
            with _SignalGuard(sigint=False) as guard:
                for pj in miss_jobs:
                    if guard.draining:
                        _record_aborted(
                            pj, "SIGTERM drain: job never started")
                        continue
                    while True:
                        item = (pj.key, pj.job, pj.trace_path,
                                pj.index, pj.tries + 1, False)
                        try:
                            _key, data, seconds = _run_job(item)
                        except WorkerError as err:
                            pj.tries += 1
                            pj.last_class = classify_failure(err.detail,
                                                             err.root_cause)
                            pj.last_detail = err.detail
                            pj.last_root = err.root_cause
                            if guard.draining:
                                _record_aborted(
                                    pj, "SIGTERM drain: retry abandoned "
                                    "after attempt %d" % pj.tries)
                                break
                            if (pj.last_class in RETRYABLE
                                    and pj.tries <= retries):
                                if progress:
                                    progress(done, total, pj.workload_name,
                                             pj.config_name, 0.0, "retry")
                                time.sleep(backoff * (2 ** (pj.tries - 1)))
                                continue
                            if keep_going:
                                _record_terminal(pj)
                                break
                            raise
                        else:
                            _record_success(pj, data, seconds)
                            break
                drained = guard.draining
        elif miss_jobs:
            ctx = multiprocessing.get_context(start_method())
            queue = deque(miss_jobs)
            active = {}  # recv_conn -> (pj, process, deadline)

            def _launch(pj):
                recv_conn, send_conn = ctx.Pipe(duplex=False)
                item = (pj.key, pj.job, pj.trace_path,
                        pj.index, pj.tries + 1, True)
                process = ctx.Process(target=_job_worker,
                                      args=(item, send_conn), daemon=True)
                process.start()
                send_conn.close()
                timeout = resolve_job_timeout(job_timeout, pj.job[2])
                deadline = (time.monotonic() + timeout
                            if timeout is not None else None)
                active[recv_conn] = (pj, process, deadline)

            def _fail_attempt(pj, classification, detail, root_cause):
                nonlocal fatal
                pj.tries += 1
                pj.last_class = classification
                pj.last_detail = detail
                pj.last_root = root_cause
                if classification in RETRYABLE and pj.tries <= retries:
                    pj.next_start = (time.monotonic()
                                     + backoff * (2 ** (pj.tries - 1)))
                    queue.append(pj)
                    if progress:
                        progress(done, total, pj.workload_name,
                                 pj.config_name, 0.0, "retry")
                    return
                if keep_going:
                    _record_terminal(pj)
                    return
                fatal = WorkerError(pj.workload_name, pj.config_name,
                                    detail, root_cause)

            with _SignalGuard() as guard:
                drain_deadline = None
                while (queue or active) and fatal is None \
                        and not guard.triggered:
                    now = time.monotonic()
                    if guard.draining:
                        # Graceful drain: launch nothing new, let in-flight
                        # chunks finish (their results commit incrementally
                        # as usual), mark everything queued as aborted.
                        if drain_deadline is None:
                            drain_deadline = now + drain_timeout_default()
                        while queue:
                            pj = queue.popleft()
                            _record_aborted(
                                pj, "SIGTERM drain: job never started"
                                if pj.tries == 0 else
                                "SIGTERM drain: retry abandoned after "
                                "attempt %d" % pj.tries)
                        if not active:
                            break
                        if now >= drain_deadline:
                            for conn, (pj, process, _dl) in list(
                                    active.items()):
                                del active[conn]
                                _stop_worker(process)
                                conn.close()
                                _record_aborted(
                                    pj, "SIGTERM drain: in-flight chunk "
                                    "exceeded the %.1fs drain deadline; "
                                    "worker killed" % drain_timeout_default())
                            break
                    # Launch every eligible job up to the worker cap.
                    if not guard.draining:
                        for _ in range(len(queue)):
                            if len(active) >= workers:
                                break
                            pj = queue.popleft()
                            if pj.next_start <= now:
                                _launch(pj)
                            else:
                                queue.append(pj)  # still backing off
                    if not active:
                        # Everything is backing off: sleep to eligibility
                        # (capped so SIGINT stays responsive).
                        soonest = min(pj.next_start for pj in queue)
                        time.sleep(min(max(soonest - now, 0.0), 0.05))
                        continue
                    # Short timeout: the wait doubles as the poll tick for
                    # deadlines, backoff eligibility, and the SIGINT flag.
                    for conn in _wait_connections(list(active), timeout=0.05):
                        pj, process, _deadline = active.pop(conn)
                        try:
                            message = conn.recv()
                        except (EOFError, OSError):
                            message = None
                        conn.close()
                        process.join()
                        if message is not None and message[0] == "ok":
                            _record_success(pj, message[2], message[3])
                        elif message is not None:
                            _, _wl, _cfg, detail, root_cause = message
                            _fail_attempt(
                                pj, classify_failure(detail, root_cause),
                                detail, root_cause)
                        else:
                            _fail_attempt(
                                pj, CLASS_CRASH,
                                "worker process died without a result "
                                "(exit code %s) on attempt %d"
                                % (process.exitcode, pj.tries + 1), None)
                    now = time.monotonic()
                    for conn, (pj, process, deadline) in list(active.items()):
                        if deadline is not None and now >= deadline:
                            del active[conn]
                            _stop_worker(process)
                            conn.close()
                            _fail_attempt(
                                pj, CLASS_TIMEOUT,
                                "watchdog: attempt %d exceeded its %.1fs "
                                "deadline; worker killed"
                                % (pj.tries + 1,
                                   resolve_job_timeout(job_timeout,
                                                       pj.job[2])), None)
                # Orderly shutdown for every early-exit path (SIGINT or a
                # fatal failure): no orphaned workers, no zombies.
                for conn, (pj, process, _deadline) in active.items():
                    _stop_worker(process)
                    conn.close()
                active.clear()
                drained = guard.draining
                if guard.triggered:
                    raise KeyboardInterrupt
            if fatal is not None:
                raise fatal
        if trace_dir is not None:
            # Merge per-job event logs in job (not completion) order; the
            # result is byte-identical however many workers ran.
            with open(trace_spec.path, "wb") as merged:
                for pj in miss_jobs:
                    if os.path.exists(pj.trace_path):
                        with open(pj.trace_path, "rb") as part:
                            shutil.copyfileobj(part, merged)
        # Assemble sampled cells from their interval results.  Aggregation
        # consumes intervals in index order with a deterministic early-stop
        # rule, so the cell result is identical however many workers ran
        # (and identical to a serial simulate_sampled that stopped early).
        for cell_key, cell in interval_cells.items():
            datas = []
            for interval_key in cell["interval_keys"]:
                result = by_key.get(interval_key)
                if result is None:
                    datas = None  # an interval failed terminally
                    break
                datas.append(result.data)
            if datas is None:
                by_key[cell_key] = None
                continue
            result = SimResult(aggregate_intervals(datas, cell["spec"]))
            cache.put(cell_key, result)
            by_key[cell_key] = result
    finally:
        if trace_dir is not None:
            shutil.rmtree(trace_dir, ignore_errors=True)

    failures.sort(key=lambda record: (record["job_index"],
                                      record["recovered"]))
    report = TimingReport(
        wall_seconds=time.perf_counter() - started,
        jobs_total=total,
        jobs_simulated=len(miss_jobs) + len(batch_pjs),
        jobs_deduplicated=deduplicated,
        cache_hits=cache_hits,
        workers=workers if miss_jobs else 0,
        instructions_simulated=sum(
            by_key[pj.key].data["total_instructions"]
            for pj in miss_jobs + batch_pjs
            if by_key.get(pj.key) is not None
        ),
        jobs_failed=sum(1 for r in failures if not r["recovered"]
                        and r["classification"] not in (CLASS_CORRUPT_CACHE,
                                                        CLASS_ABORTED)),
        failures=failures,
        drained=drained,
    )
    # Job order, not completion order: deterministic output.
    return [by_key.get(key) for key in keys], report


def run_suite_parallel(config, workloads, length, warmup,
                       cache=None, max_workers=None, progress=None,
                       job_timeout=None, retries=None, keep_going=False,
                       sampling=None, batch_warm=None, batch_detail=None,
                       shards=None):
    """Fan one config across ``workloads``; returns ``({name: SimResult},
    TimingReport)``.  Under ``keep_going``, failed workloads are simply
    absent from the mapping (the report's manifest names them).

    ``sampling`` is an optional interval-sampling spec (see
    :func:`~repro.sim.sampling.normalize_spec`); each workload's intervals
    then run as independent jobs sharing one warm-state checkpoint.
    """
    jobs = [(name, config, length, warmup, sampling) for name in workloads]
    results, report = run_jobs(jobs, cache=cache, max_workers=max_workers,
                               progress=progress, job_timeout=job_timeout,
                               retries=retries, keep_going=keep_going,
                               batch_warm=batch_warm,
                               batch_detail=batch_detail, shards=shards)
    return {name: result for name, result in zip(workloads, results)
            if result is not None}, report


def run_matrix(configs, workloads, length, warmup,
               cache=None, max_workers=None, progress=None,
               job_timeout=None, retries=None, keep_going=False,
               sampling=None, batch_warm=None, batch_detail=None,
               shards=None):
    """Fan the full (config x workload) cross-product through one engine.

    Submitting every cell at once keeps all workers busy across config
    boundaries (a per-config pool would drain to a straggler at each
    boundary).  Returns ``([{name: SimResult}, ...] in config order,
    TimingReport)``; under ``keep_going``, failed cells are absent from
    their config's mapping and named in the report's failure manifest.

    ``sampling`` applies interval sampling to every non-VP cell; configs
    sharing warm-relevant parameters share checkpoints, so the whole
    matrix costs one functional warm per workload.
    """
    configs = list(configs)
    workloads = list(workloads)
    jobs = [
        (name, config, length, warmup, sampling)
        for config in configs
        for name in workloads
    ]
    results, report = run_jobs(jobs, cache=cache, max_workers=max_workers,
                               progress=progress, job_timeout=job_timeout,
                               retries=retries, keep_going=keep_going,
                               batch_warm=batch_warm,
                               batch_detail=batch_detail, shards=shards)
    per_config = []
    for i in range(len(configs)):
        chunk = results[i * len(workloads):(i + 1) * len(workloads)]
        per_config.append({
            name: result for name, result in zip(workloads, chunk)
            if result is not None
        })
    return per_config, report
