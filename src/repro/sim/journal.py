"""Crash-safe commits for the on-disk stores: write-ahead journal + lock.

The result cache and the checkpoint store both follow the same commit
discipline — write a checksummed ``{"checksum", "data"}`` envelope to a
per-process temp file, then ``os.replace`` it into place.  That is atomic
against *readers*, but a ``kill -9`` mid-commit can still strand temp
files, and two unrelated ``repro suite`` processes filling one directory
interleave commits with no coordination at all.  This module closes both
gaps:

- :class:`FileLock` — an inter-process mutex built from an ``O_EXCL``
  lockfile containing the holder's PID.  A lockfile whose PID is no longer
  alive (the holder was SIGKILLed mid-commit) is taken over; a live holder
  makes the second process wait, so concurrent sweeps over one cache
  directory serialize their commits instead of interleaving them.
- :class:`Journal` — a JSONL write-ahead log.  Every commit appends a
  fsync'd *intent* record (key, final filename, temp filename, payload
  checksum) before the payload is written, and a *commit* record after the
  atomic ``os.replace``; the journal is then truncated (the WAL
  checkpoint).  A crash at any instant leaves at most one dangling intent,
  and :meth:`Journal.replay` — run automatically the first time a store
  touches its directory — restores the invariant: orphaned temp files are
  removed, a torn final file is evicted, and a final file that is still a
  valid self-consistent envelope is **kept** (it is either the completed
  new version or the untouched old one; both are correct, and deleting the
  old version on an early crash would turn a non-loss into a loss).
- :class:`JournaledDir` — the bundle of both, exposing the
  :meth:`~JournaledDir.commit` sequence the stores call:
  ``lock -> intent -> payload (fsync) -> os.replace -> commit -> truncate``.

Fault hooks (:mod:`repro.sim.faults`): ``kill_commit:key=K:at=STAGE``
SIGKILLs the process at a chosen point inside the commit sequence and
``torn_write:key=K`` leaves a deliberately truncated final file with no
commit record — both exist so CI can prove the recovery path, not assume
it.

Knobs: ``REPRO_JOURNAL=0`` disables journaling and locking (plain
tmp+replace, the pre-journal behaviour); ``REPRO_FSYNC=0`` skips fsyncs
(benchmarking on throwaway dirs); ``REPRO_LOCK_TIMEOUT`` bounds how long a
commit waits for the directory lock (seconds, default 30).
"""

import errno
import json
import os
import time

from repro.sim import faults


def journaling_env_disabled(environ=None):
    """True when ``REPRO_JOURNAL`` explicitly disables journaled commits."""
    environ = environ if environ is not None else os.environ
    return environ.get("REPRO_JOURNAL", "") in ("0", "off", "false")


def fsync_env_disabled(environ=None):
    """True when ``REPRO_FSYNC`` explicitly disables commit fsyncs."""
    environ = environ if environ is not None else os.environ
    return environ.get("REPRO_FSYNC", "") in ("0", "off", "false")


def lock_timeout_default(environ=None):
    """Seconds a commit waits for the directory lock (REPRO_LOCK_TIMEOUT)."""
    environ = environ if environ is not None else os.environ
    value = environ.get("REPRO_LOCK_TIMEOUT")
    if value:
        try:
            return max(0.0, float(value))
        except ValueError:
            pass
    return 30.0


class LockTimeout(RuntimeError):
    """A :class:`FileLock` could not be acquired within its timeout."""


def _pid_alive(pid):
    """Best-effort liveness probe: is any process with ``pid`` running?"""
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True  # exists, owned by someone else
    except OSError:
        return True  # unknown: assume alive rather than steal a live lock
    return True


class FileLock(object):
    """Inter-process mutex: ``O_EXCL`` lockfile + stale-PID takeover.

    The lockfile holds the owner's PID.  Acquisition loops on
    ``O_CREAT | O_EXCL`` (atomic on POSIX); on contention the PID inside
    the existing file is probed with ``os.kill(pid, 0)`` — a dead owner
    (e.g. SIGKILLed mid-commit) has its lockfile removed and the loop
    retries immediately, a live owner makes us poll until ``timeout``.

    The takeover unlink is best-effort: two waiters that both judge the
    same lockfile stale can race, and the loser may briefly co-hold.  The
    journal's replay-by-validation makes that window harmless (a torn
    write is detected by checksum, never trusted), which is why the
    classic unlink race is acceptable here.
    """

    def __init__(self, path, timeout=None, poll_interval=0.01):
        self.path = path
        self.timeout = timeout if timeout is not None else lock_timeout_default()
        self.poll_interval = poll_interval
        self._held = False

    def acquire(self):
        deadline = time.monotonic() + self.timeout
        payload = ("%d\n" % os.getpid()).encode("ascii")
        while True:
            try:
                fd = os.open(self.path,
                             os.O_CREAT | os.O_EXCL | os.O_WRONLY, 0o644)
            except FileExistsError:
                if self._takeover_if_stale():
                    continue
                if time.monotonic() >= deadline:
                    raise LockTimeout(
                        "could not acquire %s within %.1fs (held by %s)"
                        % (self.path, self.timeout, self._owner_repr())
                    )
                time.sleep(self.poll_interval)
                continue
            except OSError as exc:
                if exc.errno == errno.ENOENT:
                    # Directory vanished mid-acquire (concurrent clear).
                    os.makedirs(os.path.dirname(self.path) or ".",
                                exist_ok=True)
                    continue
                raise
            try:
                os.write(fd, payload)
            finally:
                os.close(fd)
            self._held = True
            return self

    def _read_owner(self):
        try:
            with open(self.path) as handle:
                return int(handle.read().strip() or "0")
        except (OSError, ValueError):
            return None

    def _owner_repr(self):
        owner = self._read_owner()
        return "pid %d" % owner if owner else "unknown pid"

    def _takeover_if_stale(self):
        """Remove the lockfile if its owner is provably dead.  Returns True
        when the caller should retry acquisition immediately."""
        owner = self._read_owner()
        if owner is None:
            # Unreadable or not-yet-written: the creator may be between
            # open and write.  Only steal once the file has clearly been
            # abandoned for a while.
            try:
                age = time.time() - os.path.getmtime(self.path)
            except OSError:
                return True  # gone already: retry
            if age < 30.0:
                return False
        elif _pid_alive(owner):
            return False
        try:
            os.unlink(self.path)
        except OSError:
            pass  # someone else took it over first
        return True

    def release(self):
        if not self._held:
            return
        self._held = False
        try:
            os.unlink(self.path)
        except OSError:
            pass

    def __enter__(self):
        return self.acquire()

    def __exit__(self, *_exc_info):
        self.release()
        return False


def _fsync_file(handle):
    if fsync_env_disabled():
        return
    handle.flush()
    os.fsync(handle.fileno())


def validate_envelope(path, checksum):
    """Classify the file at ``path`` as a checksummed envelope.

    Returns None when the file is a fully-written, self-consistent
    ``{"checksum", "data"}`` envelope, else a human-readable reason —
    the same classifications the stores use on read.
    """
    try:
        with open(path) as handle:
            envelope = json.load(handle)
    except (OSError, ValueError):
        return "unreadable (truncated or malformed JSON)"
    if (
        not isinstance(envelope, dict)
        or "checksum" not in envelope
        or not isinstance(envelope.get("data"), dict)
    ):
        return "not a checksummed envelope"
    if checksum(envelope["data"]) != envelope["checksum"]:
        return "checksum mismatch (payload altered on disk)"
    return None


class Journal(object):
    """JSONL write-ahead log for one store directory.

    At rest the journal is empty (every commit truncates it after its
    commit record), so the recovery scan — a single ``os.path.getsize`` —
    is free on the hot path.  A non-empty journal means a commit was
    interrupted; :meth:`replay` then re-establishes the store invariant.
    """

    FILENAME = "journal.wal"

    def __init__(self, directory):
        self.directory = directory
        self.path = os.path.join(directory, self.FILENAME)
        self._counter = 0

    def _append(self, record, fsync):
        with open(self.path, "a") as handle:
            handle.write(json.dumps(record, sort_keys=True) + "\n")
            if fsync:
                _fsync_file(handle)

    def begin(self, key, final_name, tmp_name, checksum):
        """Durably record the intent to replace ``final_name``; returns the
        sequence id the matching :meth:`commit` must quote."""
        self._counter += 1
        seq = "%d.%d" % (os.getpid(), self._counter)
        self._append({"op": "intent", "seq": seq, "key": key,
                      "file": final_name, "tmp": tmp_name,
                      "checksum": checksum}, fsync=True)
        return seq

    def commit(self, seq):
        """Record completion of ``seq`` and checkpoint (truncate) the log."""
        self._append({"op": "commit", "seq": seq}, fsync=False)
        with open(self.path, "r+") as handle:
            handle.truncate(0)

    def needs_replay(self):
        """Cheap at-rest probe: True only when a commit was interrupted."""
        try:
            return os.path.getsize(self.path) > 0
        except OSError:
            return False

    def _parse(self):
        """Journal records plus a flag for a torn (partial) trailing line."""
        records = []
        torn_tail = False
        try:
            with open(self.path) as handle:
                lines = handle.read().splitlines()
        except OSError:
            return records, torn_tail
        for line in lines:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                # A crash mid-append leaves a partial last line; anything
                # unparsable is treated the same way (never trusted).
                torn_tail = True
                continue
            if isinstance(record, dict):
                records.append(record)
        return records, torn_tail

    def replay(self, checksum):
        """Roll the directory forward to a clean state.

        For every intent with no commit record: the orphaned temp file is
        removed, and the final file is kept only if it is a valid
        self-consistent envelope (either the completed new version or the
        untouched old one — indistinguishable, and both correct); a torn
        final file is evicted.  Returns a summary dict, or None when the
        journal was already empty.
        """
        if not self.needs_replay():
            return None
        summary = {"pending": 0, "committed": 0, "removed_tmp": 0,
                   "kept": 0, "evicted": [], "torn_tail": False}
        records, summary["torn_tail"] = self._parse()
        committed = {r.get("seq") for r in records if r.get("op") == "commit"}
        for record in records:
            if record.get("op") != "intent":
                continue
            if record.get("seq") in committed:
                summary["committed"] += 1
                continue
            summary["pending"] += 1
            tmp_name = record.get("tmp")
            if tmp_name:
                tmp = os.path.join(self.directory, tmp_name)
                if os.path.exists(tmp):
                    try:
                        os.remove(tmp)
                        summary["removed_tmp"] += 1
                    except OSError:
                        pass
            final_name = record.get("file")
            if not final_name:
                continue
            final = os.path.join(self.directory, final_name)
            if not os.path.exists(final):
                continue
            reason = validate_envelope(final, checksum)
            if reason is None:
                summary["kept"] += 1
                continue
            try:
                os.remove(final)
            except OSError:
                pass
            summary["evicted"].append(
                {"key": record.get("key", final_name), "reason": reason}
            )
        try:
            with open(self.path, "r+") as handle:
                handle.truncate(0)
        except OSError:
            pass
        return summary


class JournaledDir(object):
    """Lock + journal for one store directory; owns the commit sequence.

    ``checksum`` is the store's canonical payload hash (both stores use
    canonical-JSON sha256), reused to validate final files during replay.
    """

    LOCK_FILENAME = ".lock"

    def __init__(self, directory, checksum):
        self.directory = directory
        self.checksum = checksum
        self.journal = Journal(directory)
        self.lock = FileLock(os.path.join(directory, self.LOCK_FILENAME))
        #: Most recent non-trivial :meth:`recover` summary (diagnostics).
        self.last_replay = None

    def recover(self):
        """Replay an interrupted commit, if any.  Cheap (one stat) when the
        journal is at rest; evictions are returned as ``{"key", "reason"}``
        dicts for the store's eviction log."""
        if not self.journal.needs_replay():
            return []
        with self.lock:
            summary = self.journal.replay(self.checksum)
        if summary is None:
            return []
        self.last_replay = summary
        return summary["evicted"]

    def commit(self, key, path, envelope):
        """The full journaled commit sequence for one envelope.

        lock -> intent (fsync) -> temp payload (fsync) -> ``os.replace``
        -> commit record -> journal truncate.  The ``kill_commit`` /
        ``torn_write`` fault hooks between the stages are no-ops (one env
        lookup) unless ``REPRO_FAULT`` requests them.
        """
        tmp = "%s.%d.tmp" % (path, os.getpid())
        with self.lock:
            seq = self.journal.begin(key, os.path.basename(path),
                                     os.path.basename(tmp),
                                     envelope["checksum"])
            faults.fire_commit_faults(key, "intent")
            with open(tmp, "w") as handle:
                json.dump(envelope, handle)
                _fsync_file(handle)
            faults.fire_commit_faults(key, "payload")
            if faults.torn_write_requested(key):
                # Simulate a crash that left a half-written final file and
                # no commit record: replay must evict it.
                with open(tmp, "rb") as handle:
                    blob = handle.read()
                with open(path, "wb") as handle:
                    handle.write(blob[: max(1, len(blob) // 2)])
                try:
                    os.remove(tmp)
                except OSError:
                    pass
                return
            os.replace(tmp, path)
            faults.fire_commit_faults(key, "replace")
            self.journal.commit(seq)
