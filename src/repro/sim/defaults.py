"""The single source of truth for simulation-length defaults.

Every layer that needs a default trace length or warmup — the CLI, the
benchmark harness, :func:`repro.sim.runner.simulate`,
:func:`repro.sim.cache.simulate_cached`, and the experiment drivers —
imports these constants, so the documented defaults cannot drift from the
implemented ones (they once did: the experiments docstring said 20000
while ``default_length()`` returned 12000).

Environment overrides (``REPRO_LENGTH``, ``REPRO_WARMUP``) are applied by
:mod:`repro.sim.experiments`, not here: these are the *fallback* values.
"""

#: Trace length in instructions when neither the caller nor ``REPRO_LENGTH``
#: specifies one.
DEFAULT_LENGTH = 12000

#: Warmup instructions excluded from measurement when neither the caller nor
#: ``REPRO_WARMUP`` specifies a value.
DEFAULT_WARMUP = 2000
