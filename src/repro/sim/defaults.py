"""The single source of truth for simulation-length defaults.

Every layer that needs a default trace length or warmup — the CLI, the
benchmark harness, :func:`repro.sim.runner.simulate`,
:func:`repro.sim.cache.simulate_cached`, and the experiment drivers —
imports these constants, so the documented defaults cannot drift from the
implemented ones (they once did: the experiments docstring said 20000
while ``default_length()`` returned 12000).

The split follows the sampled-simulation methodology (EXPERIMENTS.md):
the warmup region is executed by the functional fast-forward engine
(which warms caches, TLB, and predictors at ~1.7 us/instruction instead
of the detailed core's ~15-20 us), and the measured window runs through
the detailed core.  Versus the original 12000/2000 defaults this is a
10x longer warmup — the old 2000-instruction warmup left caches and
predictors visibly cold, the dominant source of sampling error — and a
2x longer measured window, while suite sweeps got *faster* because the
warmup no longer pays detailed-core cost.  ``--no-ff`` (or
``REPRO_FF=0``) simulates the whole trace in detail for validation runs.
"""

#: Trace length in instructions when neither the caller nor ``REPRO_LENGTH``
#: specifies one.
DEFAULT_LENGTH = 40000

#: Warmup instructions excluded from measurement when neither the caller nor
#: ``REPRO_WARMUP`` specifies a value.  Kept at exactly ``DEFAULT_LENGTH/2``,
#: the runner's clamp, so the documented and effective warmups agree.
DEFAULT_WARMUP = 20000
