"""Disk cache for simulation results.

Twelve benchmark experiments share a common baseline over 65 workloads;
re-simulating it per figure would dominate wall-clock.  Results are keyed
by (workload, trace length, warmup, config fingerprint) and stored as JSON
under ``REPRO_CACHE_DIR`` (default ``<repo>/benchmarks/.cache``).  Delete
the directory to force clean re-runs.
"""

import dataclasses
import hashlib
import json
import os

from repro.sim.runner import SimResult, simulate


def config_fingerprint(config):
    """Stable hash of every field of a CoreConfig (incl. nested rfp/vp)."""
    payload = dataclasses.asdict(config)
    text = json.dumps(payload, sort_keys=True, default=str)
    return hashlib.sha256(text.encode("utf-8")).hexdigest()[:16]


class ResultCache(object):
    """JSON-file-per-result cache."""

    def __init__(self, directory=None):
        if directory is None:
            directory = os.environ.get("REPRO_CACHE_DIR") or os.path.join(
                os.path.dirname(os.path.dirname(os.path.dirname(
                    os.path.dirname(os.path.abspath(__file__))))),
                "benchmarks",
                ".cache",
            )
        self.directory = directory
        self.hits = 0
        self.misses = 0

    def _path(self, key):
        return os.path.join(self.directory, key + ".json")

    def key(self, workload, config, length, warmup):
        return "%s-%d-%d-%s" % (workload, length, warmup, config_fingerprint(config))

    def get(self, key):
        path = self._path(key)
        if not os.path.exists(path):
            self.misses += 1
            return None
        try:
            with open(path) as handle:
                data = json.load(handle)
        except (OSError, ValueError):
            self.misses += 1
            return None
        self.hits += 1
        return SimResult(data)

    def put(self, key, result):
        os.makedirs(self.directory, exist_ok=True)
        path = self._path(key)
        tmp = path + ".tmp"
        with open(tmp, "w") as handle:
            json.dump(result.as_dict(), handle)
        os.replace(tmp, path)


_default_cache = None


def default_cache():
    global _default_cache
    if _default_cache is None:
        _default_cache = ResultCache()
    return _default_cache


def simulate_cached(workload, config, length=20000, warmup=4000, cache=None):
    """Like :func:`repro.sim.runner.simulate` but memoised on disk."""
    cache = cache or default_cache()
    key = cache.key(workload, config, length, warmup)
    cached = cache.get(key)
    if cached is not None:
        return cached
    result = simulate(workload, config, length=length, warmup=warmup)
    cache.put(key, result)
    return result
