"""Disk cache for simulation results.

Twelve benchmark experiments share a common baseline over 65 workloads;
re-simulating it per figure would dominate wall-clock.  Results are keyed
by (workload, trace length, warmup, schema + config fingerprint) and stored
as JSON under ``REPRO_CACHE_DIR`` (default ``<repo>/benchmarks/.cache``).

Versioning: :data:`~repro.sim.runner.SCHEMA_VERSION` is mixed into every
fingerprint, so results written by an older simulator (different
``SimResult`` fields or core timing semantics) become cache *misses* rather
than silently-wrong answers.  ``repro cache-clear`` removes entries;
``repro cache-stats`` reports what is on disk.

Concurrency and crash safety: every write is a journaled commit
(:mod:`repro.sim.journal`) — an inter-process file lock serializes
concurrent fillers of one directory, a fsync'd write-ahead intent record
precedes the per-process temp file + atomic ``os.replace``, and a commit
record closes the sequence.  A ``kill -9`` at any instant leaves the entry
either fully written or cleanly recoverable: the journal is replayed
automatically the next time any process opens the store, removing orphaned
temp files and evicting torn finals.  ``REPRO_JOURNAL=0`` falls back to
the bare tmp+replace discipline.

Integrity: every entry is stored as ``{"checksum": ..., "data": ...}``
where the checksum hashes the canonical JSON of the payload.  A truncated
file, malformed JSON, a legacy (pre-envelope) entry, or a payload that no
longer matches its checksum is classified, **evicted** (the file is
removed with a warning naming the key), and the job re-simulated — a
flipped bit on disk costs one redundant simulation, never a wrong figure.
Evictions are recorded on :attr:`ResultCache.eviction_log` so the parallel
engine can fold them into its failure manifest.
"""

import dataclasses
import hashlib
import json
import os
import warnings

from repro.core.core import event_loop_env_disabled
from repro.sim import faults
from repro.sim.defaults import DEFAULT_LENGTH, DEFAULT_WARMUP
from repro.sim.journal import JournaledDir, journaling_env_disabled
from repro.sim.runner import (
    SCHEMA_VERSION,
    SimResult,
    fast_forward_env_disabled,
    simulate,
)

#: On-disk envelope version.  Mixed into every fingerprint so entries
#: written in the pre-checksum format become cache misses (and are then
#: simply unreferenced files) instead of eviction warnings on every read.
CACHE_FORMAT = 2


def config_fingerprint(config):
    """Stable hash of the result schema version plus every field of a
    CoreConfig (incl. nested rfp/vp).

    The ``REPRO_FF`` and ``REPRO_EVENT_LOOP`` kill-switches live outside
    the config dataclass, yet they change how results are produced — mix
    them in so full-detail validation runs, two-speed runs, and the two
    scheduling engines can never share cache entries.  (The engines are
    bit-exact by construction, but the whole point of keeping the legacy
    loop for a release is to *prove* that, not assume it.)"""
    payload = {
        "schema": SCHEMA_VERSION,
        "cache_format": CACHE_FORMAT,
        "config": dataclasses.asdict(config),
        "ff_env_disabled": fast_forward_env_disabled(),
        "event_loop_disabled": event_loop_env_disabled(),
    }
    text = json.dumps(payload, sort_keys=True, default=str)
    return hashlib.sha256(text.encode("utf-8")).hexdigest()[:16]


class ResultCache(object):
    """JSON-file-per-result cache."""

    def __init__(self, directory=None):
        if directory is None:
            directory = os.environ.get("REPRO_CACHE_DIR") or os.path.join(
                os.path.dirname(os.path.dirname(os.path.dirname(
                    os.path.dirname(os.path.abspath(__file__))))),
                "benchmarks",
                ".cache",
            )
        self.directory = directory
        self.hits = 0
        self.misses = 0
        #: Corruption incidents seen by this process: dicts with ``key``
        #: and ``reason``.  Drained by the parallel engine's manifest via
        #: :meth:`pop_evictions`.
        self.eviction_log = []
        self._journaled = None

    def _path(self, key):
        return os.path.join(self.directory, key + ".json")

    def _journal(self):
        """The directory's :class:`JournaledDir`, or None when disabled."""
        if journaling_env_disabled():
            return None
        if self._journaled is None:
            self._journaled = JournaledDir(self.directory, self.checksum)
        return self._journaled

    def _recover(self):
        """Replay an interrupted commit; free (one stat) when at rest."""
        journaled = self._journal()
        if journaled is None:
            return
        self.eviction_log.extend(journaled.recover())

    def key(self, workload, config, length, warmup):
        return "%s-%d-%d-%s" % (workload, length, warmup, config_fingerprint(config))

    @staticmethod
    def checksum(data):
        """Content hash of a result payload (canonical-JSON sha256)."""
        text = json.dumps(data, sort_keys=True, default=str)
        return hashlib.sha256(text.encode("utf-8")).hexdigest()[:16]

    def get(self, key):
        path = self._path(key)
        self._recover()
        # Deterministic fault injection (REPRO_FAULT=corrupt_cache:key=...):
        # no-op — a single env lookup — unless faults are requested.
        faults.corrupt_cache_file(key, path)
        if not os.path.exists(path):
            self.misses += 1
            return None
        reason = None
        try:
            with open(path) as handle:
                envelope = json.load(handle)
        except (OSError, ValueError):
            reason = "unreadable (truncated or malformed JSON)"
        else:
            if (
                not isinstance(envelope, dict)
                or "checksum" not in envelope
                or not isinstance(envelope.get("data"), dict)
            ):
                reason = "not a checksummed cache envelope"
            elif self.checksum(envelope["data"]) != envelope["checksum"]:
                reason = "checksum mismatch (payload altered on disk)"
        if reason is not None:
            self._evict(key, path, reason)
            self.misses += 1
            return None
        self.hits += 1
        return SimResult(envelope["data"])

    def _evict(self, key, path, reason):
        """Remove a corrupt entry, warn, and log the incident."""
        try:
            os.remove(path)
        except OSError:
            pass
        self.eviction_log.append({"key": key, "reason": reason})
        warnings.warn(
            "evicted corrupt result-cache entry %s: %s — the job will be "
            "re-simulated" % (key, reason),
            RuntimeWarning,
            stacklevel=3,
        )

    def pop_evictions(self):
        """Drain and return the corruption incidents seen so far."""
        log, self.eviction_log = self.eviction_log, []
        return log

    def put(self, key, result):
        os.makedirs(self.directory, exist_ok=True)
        path = self._path(key)
        data = result.as_dict()
        envelope = {"checksum": self.checksum(data), "data": data}
        journaled = self._journal()
        if journaled is not None:
            self._recover()
            # Locked, journaled commit: intent record, fsync'd payload via
            # atomic os.replace, commit record (see repro.sim.journal).
            journaled.commit(key, path, envelope)
            return
        # REPRO_JOURNAL=0 fallback: per-process temp name so concurrent
        # fillers never clobber each other's in-progress write; os.replace
        # is atomic on POSIX.
        tmp = "%s.%d.tmp" % (path, os.getpid())
        with open(tmp, "w") as handle:
            json.dump(envelope, handle)
        os.replace(tmp, path)

    # -- maintenance (the CLI's cache-clear / cache-stats) ---------------

    def entry_paths(self):
        """Paths of all result files currently in the cache directory."""
        if not os.path.isdir(self.directory):
            return []
        return sorted(
            os.path.join(self.directory, name)
            for name in os.listdir(self.directory)
            if name.endswith(".json")
        )

    def stats(self):
        """On-disk entry count/bytes plus this process's hit/miss counters."""
        self._recover()
        paths = self.entry_paths()
        total_bytes = 0
        for path in paths:
            try:
                total_bytes += os.path.getsize(path)
            except OSError:
                pass
        return {
            "directory": self.directory,
            "entries": len(paths),
            "bytes": total_bytes,
            "hits": self.hits,
            "misses": self.misses,
        }

    def clear(self):
        """Delete every cached result (and stray temp files); returns the
        number of entries removed."""
        removed = 0
        if not os.path.isdir(self.directory):
            return removed
        for name in os.listdir(self.directory):
            if not (name.endswith(".json") or ".json." in name):
                continue
            try:
                os.remove(os.path.join(self.directory, name))
                removed += 1
            except OSError:
                pass
        return removed


_default_cache = None


def default_cache():
    global _default_cache
    if _default_cache is None:
        _default_cache = ResultCache()
    return _default_cache


def simulate_cached(workload, config, length=DEFAULT_LENGTH,
                    warmup=DEFAULT_WARMUP, cache=None):
    """Like :func:`repro.sim.runner.simulate` but memoised on disk."""
    cache = cache or default_cache()
    key = cache.key(workload, config, length, warmup)
    cached = cache.get(key)
    if cached is not None:
        return cached
    result = simulate(workload, config, length=length, warmup=warmup)
    cache.put(key, result)
    return result
