"""Oracle prefetching configurations (paper Fig. 1).

"An oracle prefetching from level N to level N-1 will ensure all hits at
level N will be served at the latency of level N-1."  Each mode overrides
the serve latency of one hierarchy level accordingly; the register-file
"latency" is one cycle (a load that is effectively a register read).
"""

RF_LATENCY = 1

#: Mode name -> human description.
ORACLE_MODES = {
    "l1_to_rf": "L1 hits served at register-file latency",
    "l2_to_l1": "L2 hits served at L1 latency",
    "llc_to_l2": "LLC hits served at L2 latency",
    "mem_to_llc": "DRAM accesses served at LLC latency",
}


def oracle_config(base_config, mode):
    """Return a copy of ``base_config`` with one oracle override applied."""
    if mode == "l1_to_rf":
        overrides = {"L1": RF_LATENCY}
    elif mode == "l2_to_l1":
        overrides = {"L2": base_config.l1_latency}
    elif mode == "llc_to_l2":
        overrides = {"LLC": base_config.l2_latency}
    elif mode == "mem_to_llc":
        overrides = {"DRAM": base_config.llc_latency}
    else:
        raise ValueError("unknown oracle mode %r (see ORACLE_MODES)" % mode)
    config = base_config.evolve(oracle_overrides=overrides)
    config.name = "%s+oracle_%s" % (base_config.name, mode)
    return config
