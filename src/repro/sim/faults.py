"""Deterministic fault injection for the resilience subsystem.

The recovery machinery in :mod:`repro.sim.parallel` (watchdog, retry with
backoff, keep-going manifests) and :mod:`repro.sim.cache` (checksum
eviction) is itself code that can rot; this module makes every error path
reachable on demand so CI exercises the recovery logic, not just the happy
path.  Faults are requested through the ``REPRO_FAULT`` environment
variable — a comma-separated list of specs, each ``kind:param=value:...``:

- ``crash:job=3`` — worker for job index 3 dies (hard ``os._exit`` in a
  child process, an :class:`InjectedCrash` exception in-process).
- ``hang:job=5:seconds=120`` — worker for job index 5 sleeps instead of
  simulating, so the parent's watchdog must kill it.
- ``corrupt_cache:key=spec06_mcf`` — the first cache entry whose key
  contains the substring is corrupted on disk before it is read, so the
  checksum eviction + re-simulation path runs.
- ``corrupt_checkpoint:key=spec06_mcf`` — same, but aimed at the warm-state
  checkpoint store: the corrupted checkpoint is evicted and the workload is
  re-warmed functionally instead of restored.
- ``rand:p=0.05:seed=7:modes=crash|hang`` — each (job, attempt) fails with
  probability ``p``, chosen by a deterministic per-(seed, job, attempt)
  stream so a given spec always injects the same faults.

Shard-pool flavours (:mod:`repro.sim.scheduler`):

- ``kill_shard:shard=N:after=C`` — shard ``N`` hard-exits when it receives
  its ``C+1``-th job, so the supervisor must requeue the in-flight job and
  respawn the shard.  The ``attempts=K`` bound counts shard *incarnations*
  here: the default ``attempts=1`` kills only the first incarnation, so
  the respawned shard survives.
- ``hang_heartbeat:shard=N:seconds=S:after=C`` — shard ``N`` stops
  heartbeating (and working) for ``S`` seconds starting at its ``C+1``-th
  job, so the supervisor's heartbeat-miss quarantine must fire.

Store-commit flavours (:mod:`repro.sim.journal`):

- ``torn_write:key=K`` — the next journaled commit whose key contains the
  substring writes a half-truncated final file and *no* commit record
  (modelling a crash between payload and rename), so journal replay must
  evict it.  Fires once per matching spec per process.
- ``kill_commit:key=K:at=intent|payload|replace`` — SIGKILL the process at
  the named stage inside the commit sequence (after the intent record,
  after the payload fsync, or after the atomic rename but before the
  commit record), so recovery after a mid-commit death is provable.

Any spec may add ``attempts=K`` to fire only on the first ``K`` attempts
of a job (incarnations of a shard, matches of a commit key) — the
standard way to test that a retry then *succeeds*.  The ``corrupt_cache``
flavour accepts ``how=truncate|flip`` (truncated file vs a well-formed
envelope whose payload no longer matches its checksum).

Everything is off (and zero-cost: one env lookup) unless ``REPRO_FAULT``
is set.
"""

import json
import os
import random
import signal
import time

_VALID_KINDS = ("crash", "hang", "corrupt_cache", "corrupt_checkpoint",
                "rand", "kill_shard", "hang_heartbeat", "torn_write",
                "kill_commit")

#: Kinds that never fire from fire_worker_faults (they have their own
#: call sites in the journal and the shard scheduler).
_NON_WORKER_KINDS = frozenset((
    "corrupt_cache", "corrupt_checkpoint",
    "kill_shard", "hang_heartbeat", "torn_write", "kill_commit",
))


class InjectedFault(RuntimeError):
    """Base class for deliberately injected failures."""


class InjectedCrash(InjectedFault):
    """A ``crash`` fault firing in-process (child processes hard-exit)."""


class FaultSpec(object):
    """One parsed ``kind:param=value:...`` clause of ``REPRO_FAULT``."""

    __slots__ = ("kind", "params")

    def __init__(self, kind, params):
        self.kind = kind
        self.params = params

    def __repr__(self):
        extra = ":".join("%s=%s" % kv for kv in sorted(self.params.items()))
        return "<FaultSpec %s%s>" % (self.kind, ":" + extra if extra else "")

    def attempt_allowed(self, attempt):
        """True when this spec should still fire on ``attempt`` (1-based)."""
        limit = self.params.get("attempts")
        return limit is None or attempt <= int(limit)


def parse_faults(text):
    """Parse a ``REPRO_FAULT`` value into a list of :class:`FaultSpec`."""
    specs = []
    for clause in (text or "").split(","):
        clause = clause.strip()
        if not clause:
            continue
        fields = clause.split(":")
        kind = fields[0].strip()
        if kind not in _VALID_KINDS:
            raise ValueError(
                "unknown fault kind %r in REPRO_FAULT clause %r "
                "(expected one of %s)" % (kind, clause, ", ".join(_VALID_KINDS))
            )
        params = {}
        for field in fields[1:]:
            if "=" not in field:
                raise ValueError(
                    "malformed fault parameter %r in REPRO_FAULT clause %r "
                    "(expected name=value)" % (field, clause)
                )
            name, value = field.split("=", 1)
            params[name.strip()] = value.strip()
        specs.append(FaultSpec(kind, params))
    return specs


def active_faults(environ=None):
    """The faults requested by ``REPRO_FAULT`` (empty list when unset)."""
    environ = environ if environ is not None else os.environ
    text = environ.get("REPRO_FAULT", "")
    if not text:
        return []
    return parse_faults(text)


def _rand_fires(spec, job_index, attempt):
    """Deterministic coin flip for a ``rand`` spec at (job, attempt)."""
    seed = int(spec.params.get("seed", "0"))
    p = float(spec.params.get("p", "0.01"))
    # One independent, reproducible stream per (seed, job, attempt): the
    # same spec injects the same faults on every run and in any worker.
    rng = random.Random(seed * 1000003 + job_index * 1009 + attempt)
    return rng.random() < p


def _rand_mode(spec, job_index, attempt):
    modes = [m for m in spec.params.get("modes", "crash").split("|") if m]
    rng = random.Random(job_index * 7919 + attempt * 13 + 1)
    return modes[rng.randrange(len(modes))] if modes else "crash"


def fire_worker_faults(job_index, attempt, in_child, environ=None):
    """Trigger any crash/hang fault aimed at (job_index, attempt).

    Called at the top of every simulation attempt.  ``in_child`` says
    whether this attempt runs in a disposable worker process: there a
    ``crash`` is a hard ``os._exit`` (modelling a segfaulted / OOM-killed
    worker, which produces *no* Python traceback), while in-process it
    raises :class:`InjectedCrash` so the host survives.
    """
    environ = environ if environ is not None else os.environ
    if not environ.get("REPRO_FAULT"):
        return
    for spec in active_faults(environ):
        kind = spec.kind
        if kind in _NON_WORKER_KINDS:
            continue
        if kind == "rand":
            if not spec.attempt_allowed(attempt):
                continue
            if not _rand_fires(spec, job_index, attempt):
                continue
            kind = _rand_mode(spec, job_index, attempt)
        else:
            target = spec.params.get("job")
            if target is None or int(target) != job_index:
                continue
            if not spec.attempt_allowed(attempt):
                continue
        if kind == "hang":
            time.sleep(float(spec.params.get("seconds", "3600")))
            # A watchdog kill never lets the sleep return; if it does
            # (watchdog disabled), fail loudly rather than fake a result.
            raise InjectedFault(
                "injected hang for job %d attempt %d outlived its sleep"
                % (job_index, attempt)
            )
        if in_child:
            os._exit(32)  # no traceback, no IPC goodbye: a true crash
        raise InjectedCrash(
            "injected crash for job %d attempt %d" % (job_index, attempt)
        )


_corrupted_paths = set()


def _corrupt_envelope_file(kind, flip_field, key, path, environ):
    """Shared body of the ``corrupt_cache`` / ``corrupt_checkpoint``
    flavours: corrupt ``path`` when a ``kind`` fault targets ``key``.

    Returns the corruption flavour applied or None.  Runs at most once per
    file per process, so the subsequent rewrite (re-simulation or re-warm)
    is not re-corrupted within the same run.
    """
    environ = environ if environ is not None else os.environ
    if not environ.get("REPRO_FAULT"):
        return None
    for spec in active_faults(environ):
        if spec.kind != kind:
            continue
        needle = spec.params.get("key", "")
        if needle not in key or path in _corrupted_paths:
            continue
        if not os.path.exists(path):
            continue
        _corrupted_paths.add(path)
        how = spec.params.get("how", "truncate")
        if how == "flip":
            # Well-formed JSON whose payload no longer matches its
            # checksum — exercises the checksum-mismatch classification.
            with open(path) as handle:
                envelope = json.load(handle)
            if isinstance(envelope, dict) and isinstance(
                envelope.get("data"), dict
            ):
                envelope["data"][flip_field] = (
                    envelope["data"].get(flip_field, 0) + 1
                )
            with open(path, "w") as handle:
                json.dump(envelope, handle)
        else:
            with open(path, "rb") as handle:
                blob = handle.read()
            with open(path, "wb") as handle:
                handle.write(blob[: max(1, len(blob) // 2)])
        return how
    return None


def corrupt_cache_file(key, path, environ=None):
    """Corrupt a result-cache entry targeted by a ``corrupt_cache`` fault;
    runs in the parent immediately before a cache read."""
    return _corrupt_envelope_file("corrupt_cache", "cycles", key, path,
                                  environ)


def corrupt_checkpoint_file(key, path, environ=None):
    """Corrupt a warm-state checkpoint targeted by a ``corrupt_checkpoint``
    fault; runs immediately before a checkpoint read."""
    return _corrupt_envelope_file("corrupt_checkpoint", "functional", key,
                                  path, environ)


# ---------------------------------------------------------------------------
# shard-pool flavours (consumed by repro.sim.scheduler inside shard children)


def shard_kill_after(shard_id, incarnation, environ=None):
    """Jobs shard ``shard_id`` may finish before a ``kill_shard`` fault
    hard-exits it, or None when no such fault targets this incarnation.

    ``attempts=K`` bounds the shard's *incarnation* (1-based), defaulting
    to 1 so the supervisor's respawn is what recovers the sweep.
    """
    environ = environ if environ is not None else os.environ
    if not environ.get("REPRO_FAULT"):
        return None
    for spec in active_faults(environ):
        if spec.kind != "kill_shard":
            continue
        target = spec.params.get("shard")
        if target is None or int(target) != shard_id:
            continue
        limit = int(spec.params.get("attempts", "1"))
        if incarnation > limit:
            continue
        return int(spec.params.get("after", "1"))
    return None


def shard_heartbeat_hang(shard_id, incarnation, environ=None):
    """``(after, seconds)`` for a ``hang_heartbeat`` fault aimed at this
    shard incarnation, or None.  The shard wedges (no heartbeats, no
    progress) for ``seconds`` once it has finished ``after`` jobs."""
    environ = environ if environ is not None else os.environ
    if not environ.get("REPRO_FAULT"):
        return None
    for spec in active_faults(environ):
        if spec.kind != "hang_heartbeat":
            continue
        target = spec.params.get("shard")
        if target is None or int(target) != shard_id:
            continue
        limit = int(spec.params.get("attempts", "1"))
        if incarnation > limit:
            continue
        return (int(spec.params.get("after", "1")),
                float(spec.params.get("seconds", "30")))
    return None


# ---------------------------------------------------------------------------
# store-commit flavours (consumed by repro.sim.journal inside commits)

_torn_fired = {}  # needle -> times fired in this process


def torn_write_requested(key, environ=None):
    """True when a ``torn_write`` fault targets this commit's ``key``.

    Each matching spec fires ``attempts`` times (default 1) per process,
    so the eventual re-commit of the same key lands intact.
    """
    environ = environ if environ is not None else os.environ
    if not environ.get("REPRO_FAULT"):
        return False
    for spec in active_faults(environ):
        if spec.kind != "torn_write":
            continue
        needle = spec.params.get("key", "")
        if needle not in key:
            continue
        limit = int(spec.params.get("attempts", "1"))
        if _torn_fired.get(needle, 0) >= limit:
            continue
        _torn_fired[needle] = _torn_fired.get(needle, 0) + 1
        return True
    return False


def fire_commit_faults(key, stage, environ=None):
    """SIGKILL the process when a ``kill_commit`` fault targets this
    commit ``key`` at this ``stage`` (``intent``/``payload``/``replace``).

    A real SIGKILL — no atexit, no finally blocks — so the journal replay
    exercised afterwards is recovering from a genuine mid-commit death.
    """
    environ = environ if environ is not None else os.environ
    if not environ.get("REPRO_FAULT"):
        return
    for spec in active_faults(environ):
        if spec.kind != "kill_commit":
            continue
        needle = spec.params.get("key", "")
        if needle not in key:
            continue
        if spec.params.get("at", "replace") != stage:
            continue
        os.kill(os.getpid(), signal.SIGKILL)
