"""SMARTS-style interval sampling: plan, confidence intervals, aggregation.

Statistical sampling (Wunderlich et al., SMARTS) replaces one long detailed
measurement window with ``K`` short detailed intervals separated by
functional fast-forward gaps.  Per-interval IPCs are treated as a sample
from the workload's phase distribution; the reported IPC is their mean with
a Student-t confidence interval, and in adaptive mode measurement stops as
soon as the CI half-width falls below a target fraction of the mean.

This module is pure planning and arithmetic — no simulation:

- :class:`SamplingPlan` places the intervals: systematic sampling with
  stride ``(length - warmup) // K``, each interval preceded by a detailed
  pipeline-refill ramp (``config.ff_detail_ramp``) and reached by
  functional fast-forward from instruction zero (restored from the
  checkpoint store when possible).
- :func:`t_critical` / :func:`mean_ci` are a scipy-free Student-t: a
  hardcoded two-sided critical-value table (the classic printed table) with
  conservative round-down for untabulated degrees of freedom.
- :func:`aggregate_intervals` folds per-interval results into one
  result-shaped dict carrying ``ipc_ci`` + ``intervals`` fields, applying
  the adaptive early-stop rule deterministically (intervals are considered
  in index order, so serial and parallel runs aggregate identically).

The actual interval execution lives in ``repro.sim.runner`` (
``simulate_interval`` / ``simulate_sampled``) and the fan-out across
workers in ``repro.sim.parallel``.
"""

import math

from repro.sim.runner import fast_forward_env_disabled

#: Default relative CI half-width target for adaptive mode (1%).
DEFAULT_CI_TARGET = 0.01
DEFAULT_CONFIDENCE = 0.95
#: Adaptive mode never stops before this many intervals: a 2-sample CI is
#: wildly unstable (t(1) = 12.7) and would stop on lucky pairs.
DEFAULT_MIN_SAMPLES = 3

# Two-sided Student-t critical values, indexed [confidence][df].  The
# classic printed table: df 1..30 then 40/50/60/80/100/120.  For an
# untabulated df the next *lower* tabulated row is used — a slightly wider
# (conservative) interval, never a narrower one.
_T_TABLE = {
    0.90: {
        1: 6.314, 2: 2.920, 3: 2.353, 4: 2.132, 5: 2.015, 6: 1.943,
        7: 1.895, 8: 1.860, 9: 1.833, 10: 1.812, 11: 1.796, 12: 1.782,
        13: 1.771, 14: 1.761, 15: 1.753, 16: 1.746, 17: 1.740, 18: 1.734,
        19: 1.729, 20: 1.725, 21: 1.721, 22: 1.717, 23: 1.714, 24: 1.711,
        25: 1.708, 26: 1.706, 27: 1.703, 28: 1.701, 29: 1.699, 30: 1.697,
        40: 1.684, 50: 1.676, 60: 1.671, 80: 1.664, 100: 1.660, 120: 1.658,
    },
    0.95: {
        1: 12.706, 2: 4.303, 3: 3.182, 4: 2.776, 5: 2.571, 6: 2.447,
        7: 2.365, 8: 2.306, 9: 2.262, 10: 2.228, 11: 2.201, 12: 2.179,
        13: 2.160, 14: 2.145, 15: 2.131, 16: 2.120, 17: 2.110, 18: 2.101,
        19: 2.093, 20: 2.086, 21: 2.080, 22: 2.074, 23: 2.069, 24: 2.064,
        25: 2.060, 26: 2.056, 27: 2.052, 28: 2.048, 29: 2.045, 30: 2.042,
        40: 2.021, 50: 2.009, 60: 2.000, 80: 1.990, 100: 1.984, 120: 1.980,
    },
    0.99: {
        1: 63.657, 2: 9.925, 3: 5.841, 4: 4.604, 5: 4.032, 6: 3.707,
        7: 3.499, 8: 3.355, 9: 3.250, 10: 3.169, 11: 3.106, 12: 3.055,
        13: 3.012, 14: 2.977, 15: 2.947, 16: 2.921, 17: 2.898, 18: 2.878,
        19: 2.861, 20: 2.845, 21: 2.831, 22: 2.819, 23: 2.807, 24: 2.797,
        25: 2.787, 26: 2.779, 27: 2.771, 28: 2.763, 29: 2.756, 30: 2.750,
        40: 2.704, 50: 2.678, 60: 2.660, 80: 2.639, 100: 2.626, 120: 2.617,
    },
}

#: Large-sample (normal) limits, used only for df beyond the table's 120.
_T_INF = {0.90: 1.645, 0.95: 1.960, 0.99: 2.576}


def t_critical(df, confidence=DEFAULT_CONFIDENCE):
    """Two-sided Student-t critical value for ``df`` degrees of freedom.

    Only the tabulated confidence levels (0.90 / 0.95 / 0.99) are
    supported; an untabulated ``df`` rounds *down* to the next tabulated
    row, widening the interval slightly rather than narrowing it.
    """
    if confidence not in _T_TABLE:
        raise ValueError(
            "unsupported confidence level %r (tabulated: %s)"
            % (confidence, ", ".join("%.2f" % c for c in sorted(_T_TABLE)))
        )
    if df < 1:
        raise ValueError("t_critical needs df >= 1, got %r" % (df,))
    table = _T_TABLE[confidence]
    if df > 120:
        return _T_INF[confidence]
    if df in table:
        return table[df]
    return table[max(d for d in table if d <= df)]


def mean_ci(values, confidence=DEFAULT_CONFIDENCE):
    """Sample mean and two-sided CI half-width of ``values``.

    Returns ``(mean, half_width)``; ``half_width`` is None for a single
    value (no variance estimate exists).
    """
    values = list(values)
    if not values:
        raise ValueError("mean_ci of an empty sample")
    n = len(values)
    mean = math.fsum(values) / n
    if n == 1:
        return mean, None
    variance = math.fsum((v - mean) ** 2 for v in values) / (n - 1)
    half = t_critical(n - 1, confidence) * math.sqrt(variance / n)
    return mean, half


# ---------------------------------------------------------------------------
# spec handling


def normalize_spec(spec):
    """Fill a user-level sampling spec with defaults; validate fields.

    A spec is a dict with ``samples`` (required, K >= 1) and optional
    ``interval_length`` (detailed instructions per interval; None = the
    full stride), ``ci_target`` (relative half-width for adaptive early
    stop; None = fixed-K), ``confidence`` and ``min_samples``.
    """
    samples = int(spec["samples"])
    if samples < 1:
        raise ValueError("sampling needs samples >= 1, got %d" % samples)
    interval_length = spec.get("interval_length")
    if interval_length is not None:
        interval_length = int(interval_length)
        if interval_length < 1:
            raise ValueError(
                "interval_length must be >= 1, got %d" % interval_length
            )
    ci_target = spec.get("ci_target")
    if ci_target is not None:
        ci_target = float(ci_target)
        if not 0.0 < ci_target < 1.0:
            raise ValueError(
                "ci_target is a relative half-width in (0, 1), got %r"
                % (ci_target,)
            )
    confidence = float(spec.get("confidence", DEFAULT_CONFIDENCE))
    if confidence not in _T_TABLE:
        raise ValueError(
            "unsupported confidence level %r (tabulated: %s)"
            % (confidence, ", ".join("%.2f" % c for c in sorted(_T_TABLE)))
        )
    min_samples = int(spec.get("min_samples", DEFAULT_MIN_SAMPLES))
    return {
        "samples": samples,
        "interval_length": interval_length,
        "ci_target": ci_target,
        "confidence": confidence,
        "min_samples": max(1, min_samples),
    }


def sampling_suffix(spec):
    """Filesystem-safe cache-key suffix encoding a normalized spec.

    Appended to the result cache's fingerprinted key so sampled and
    full-detail results for the same cell never collide, and specs that
    aggregate differently (adaptive target, confidence) miss each other.
    """
    spec = normalize_spec(spec)
    return "-sK%d-n%s-t%s-c%s-m%d" % (
        spec["samples"],
        spec["interval_length"] if spec["interval_length"] is not None else 0,
        ("%g" % spec["ci_target"]) if spec["ci_target"] is not None else "off",
        "%g" % spec["confidence"],
        spec["min_samples"],
    )


class SamplingPlan(object):
    """Where the K measurement intervals of one cell sit in the trace.

    Systematic placement over the measured region (everything past the
    effective warmup window): interval ``i`` measures ``measure``
    instructions starting at instruction ``starts[i]``, reached by
    functionally fast-forwarding ``functionals[i]`` instructions (the
    checkpointable position) and then re-simulating a ``ramps[i]``-long
    detailed pipeline-refill ramp.  The fetch limit ``limits[i]`` makes the
    interval drain naturally after exactly ``measure`` measured
    instructions.

    With ``samples == 1`` and no ``interval_length`` the plan degenerates
    to today's two-speed single-window run: one interval covering the whole
    measured region with the standard warmup split.
    """

    __slots__ = ("samples", "warmup_effective", "stride", "measure",
                 "starts", "ramps", "functionals", "limits")

    def __init__(self, config, length, warmup, spec):
        spec = normalize_spec(spec)
        samples = spec["samples"]
        warmup_effective = min(warmup, max(0, length // 2))
        stride = (length - warmup_effective) // samples
        if stride < 1:
            raise ValueError(
                "cannot place %d sampling intervals in a %d-instruction "
                "measured region (trace length %d, warmup %d)"
                % (samples, length - warmup_effective, length, warmup)
            )
        measure = min(spec["interval_length"] or stride, stride)
        # Fast-forward eligibility matches fast_forward_split(): VP configs
        # and the kill-switch force every gap to full detail (ramp extends
        # back to instruction zero, no checkpoints).
        ff_ok = (
            config.fast_forward
            and not config.vp.enabled
            and not fast_forward_env_disabled()
        )
        self.samples = samples
        self.warmup_effective = warmup_effective
        self.stride = stride
        self.measure = measure
        self.starts = []
        self.ramps = []
        self.functionals = []
        self.limits = []
        for i in range(samples):
            start = warmup_effective + i * stride
            ramp = min(config.ff_detail_ramp, start) if ff_ok else start
            self.starts.append(start)
            self.ramps.append(ramp)
            self.functionals.append(start - ramp)
            self.limits.append(start + measure)

    def checkpoint_positions(self):
        """Distinct nonzero functional positions (checkpoint keys)."""
        return sorted({f for f in self.functionals if f > 0})

    def describe(self):
        return {
            "samples": self.samples,
            "stride": self.stride,
            "interval_length": self.measure,
            "warmup_effective": self.warmup_effective,
        }


def aggregate_intervals(interval_datas, spec):
    """Fold per-interval result dicts into one sampled cell result.

    ``interval_datas`` must be in interval-index order (each carries the
    ``interval`` metadata attached by ``simulate_interval``).  Adaptive
    mode (``ci_target`` set) includes intervals in that order and stops as
    soon as, with at least ``min_samples`` intervals, the CI half-width
    drops to ``ci_target * mean`` — a deterministic rule, so a serial
    early-stopped run and a parallel run-them-all sweep aggregate to the
    identical result.

    The aggregate is result-shaped (same keys a plain ``simulate`` result
    has) plus ``ipc_ci``, ``intervals`` and ``sampling`` fields.  Reported
    IPC is the *mean of per-interval IPCs* (the SMARTS estimator), which
    for a single interval equals instructions/cycles exactly.
    """
    spec = normalize_spec(spec)
    if not interval_datas:
        raise ValueError("aggregate_intervals needs at least one interval")
    ci_target = spec["ci_target"]
    confidence = spec["confidence"]
    used = list(interval_datas)
    if ci_target is not None:
        ipcs = [d["ipc"] for d in interval_datas]
        for k in range(spec["min_samples"], len(ipcs) + 1):
            mean, half = mean_ci(ipcs[:k], confidence)
            if half is not None and mean > 0 and half <= ci_target * mean:
                used = list(interval_datas[:k])
                break
    ipcs = [d["ipc"] for d in used]
    mean, half = mean_ci(ipcs, confidence)
    first = used[0]
    cycles = sum(d["cycles"] for d in used)
    instructions = sum(d["instructions"] for d in used)
    stat_keys = list(first["stats"])
    data = {
        "workload": first["workload"],
        "category": first["category"],
        "config": first["config"],
        "cycles": cycles,
        "instructions": instructions,
        "ipc": mean,
        "stats": {
            key: sum(d["stats"].get(key, 0) for d in used)
            for key in stat_keys
        },
        "loads_served": {
            key: sum(d["loads_served"].get(key, 0) for d in used)
            for key in first["loads_served"]
        },
        "total_cycles": sum(d["total_cycles"] for d in used),
        "total_instructions": sum(d["total_instructions"] for d in used),
    }
    if "rfp" in first:
        data["rfp"] = {
            key: sum(d.get("rfp", {}).get(key, 0) for d in used)
            for key in first["rfp"]
        }
    data["fast_forward"] = {
        "enabled": any(
            d.get("fast_forward", {}).get("enabled", False) for d in used
        ),
        "functional_instructions": sum(
            d.get("fast_forward", {}).get("functional_instructions", 0)
            for d in used
        ),
        "detailed_warmup": sum(
            d.get("fast_forward", {}).get("detailed_warmup", 0) for d in used
        ),
    }
    data["idle_skipped_cycles"] = sum(
        d.get("idle_skipped_cycles", 0) for d in used
    )
    data["ipc_ci"] = {
        "mean": mean,
        "half_width": half,
        "relative_half_width": (half / mean) if half is not None and mean > 0
        else None,
        "confidence": confidence,
        "intervals_used": len(used),
        "intervals_planned": spec["samples"],
        "ci_target": ci_target,
    }
    data["intervals"] = [
        {
            "index": d["interval"]["index"],
            "start": d["interval"]["start"],
            "measure": d["interval"]["measure"],
            "ipc": d["ipc"],
            "cycles": d["cycles"],
            "instructions": d["instructions"],
        }
        for d in used
    ]
    data["sampling"] = dict(spec)
    return data
