"""Warm-state checkpoints: serialize a functional warm, restore it bit-exact.

A config sweep re-derives identical warm state per cell: the
:class:`~repro.emu.warmup.FunctionalWarmer` touches only structures selected
by a small subset of the config (cache/TLB geometry, prefetcher knobs, the
RFP training tables and their RNG seed), so two cells that differ only in
timing parameters (latencies, widths, queue sizes) share the exact same
warm end-state.  This module captures that end-state once and restores it
everywhere else:

- :func:`capture` serializes everything the warmer mutates — cache/DTLB
  contents *and* counters, the L2 streamer, the hit-miss and
  memory-dependence predictors, the RFP PT/PAT/context tables including the
  probabilistic confidence counter's RNG stream, branch path history,
  architectural registers, and the committed-memory delta over the trace
  image — into a JSON-friendly dict.
- :func:`restore` applies such a dict onto a freshly constructed
  :class:`~repro.core.core.OOOCore`, leaving it indistinguishable from one
  warmed functionally over the same region (proven bit-exact by the
  determinism tests).
- :class:`CheckpointStore` is the content-addressed on-disk store, keyed by
  ``(workload, trace length, functional position, warm-relevant config
  fingerprint)`` and wrapped in the same checksummed envelopes as the
  result cache: a corrupt checkpoint is classified, evicted with a warning,
  logged for the failure manifest, and the workload re-warmed — never
  silently restored.

``REPRO_CHECKPOINT_DIR`` overrides the store location (default
``<repo>/benchmarks/.checkpoints``); ``REPRO_CHECKPOINTS=0`` disables the
store entirely (restore is bit-exact versus a fresh warm, so the switch is
*not* mixed into result fingerprints — results are identical either way).
"""

import hashlib
import json
import os
import warnings

from repro.emu.warmup import FunctionalWarmer
from repro.sim import faults
from repro.sim.journal import JournaledDir, journaling_env_disabled
from repro.sim.runner import SCHEMA_VERSION

#: On-disk checkpoint format version.  Mixed into every fingerprint so a
#: layout change turns old entries into misses, not wrong warm state.
CHECKPOINT_FORMAT = 1

#: CoreConfig fields the functional warmer's behaviour depends on.  Timing
#: parameters (latencies, widths, queue depths) are deliberately absent:
#: the warmer executes architecturally, so a timing sweep shares one warm
#: state per workload — that sharing is the whole point of the store.
WARM_CONFIG_FIELDS = (
    "line_bytes",
    "l1_size", "l1_assoc",
    "l2_size", "l2_assoc",
    "llc_size", "llc_assoc",
    "dtlb_entries", "dtlb_assoc",
    "l2_prefetcher_enabled", "l2_prefetcher_entries", "l2_prefetcher_degree",
    "l1_next_line_prefetch",
    "hit_miss_predictor", "hit_miss_entries",
    "seed",
)

#: RFPConfig fields that shape the warmer's PT/PAT/context training.
WARM_RFP_FIELDS = (
    "enabled",
    "pt_entries", "pt_assoc",
    "confidence_bits", "confidence_increment_prob",
    "utility_bits", "stride_bits", "inflight_bits",
    "use_pat", "pat_entries", "pat_assoc",
    "context_enabled", "context_entries",
)


def checkpoints_env_disabled(environ=None):
    """True when ``REPRO_CHECKPOINTS`` explicitly disables the store."""
    environ = environ if environ is not None else os.environ
    return environ.get("REPRO_CHECKPOINTS", "") in ("0", "off", "false")


def warm_fingerprint(config):
    """Stable hash of the warmup-relevant config subset.

    Two configs with equal fingerprints produce byte-identical warm state
    over the same (workload, length, functional count) by construction, so
    they share checkpoints.
    """
    payload = {
        "schema": SCHEMA_VERSION,
        "checkpoint_format": CHECKPOINT_FORMAT,
        "config": {name: getattr(config, name) for name in WARM_CONFIG_FIELDS},
        "rfp": {name: getattr(config.rfp, name) for name in WARM_RFP_FIELDS},
    }
    text = json.dumps(payload, sort_keys=True, default=str)
    return hashlib.sha256(text.encode("utf-8")).hexdigest()[:16]


# ---------------------------------------------------------------------------
# state capture / restore


def _cache_dump(cache):
    """Per-set (line, dirty) pairs in LRU order plus the stat counters."""
    stats = cache.stats
    return {
        "sets": [list(map(list, cache_set.items())) for cache_set in cache.sets],
        "stats": [stats.hits, stats.misses, stats.evictions, stats.fills,
                  stats.prefetch_fills],
    }


def _cache_load(cache, dump):
    for cache_set, pairs in zip(cache.sets, dump["sets"]):
        cache_set.clear()
        for line, dirty in pairs:
            cache_set[line] = dirty
    stats = cache.stats
    (stats.hits, stats.misses, stats.evictions, stats.fills,
     stats.prefetch_fills) = dump["stats"]


def _pt_dump(pt):
    sets = []
    for pt_set in pt.sets:
        sets.append([
            [tag, [entry.confidence, entry.utility, entry.stride,
                   entry.inflight, entry.base_addr,
                   list(entry.pat_pointer)
                   if entry.pat_pointer is not None else None,
                   entry.page_offset]]
            for tag, entry in pt_set.items()
        ])
    version, internal, gauss = pt._rng.getstate()
    return {
        "sets": sets,
        "counters": [pt.trainings, pt.allocations, pt.evictions,
                     pt.confidence_saturations],
        "rng": [version, list(internal), gauss],
    }


def _pt_load(pt, dump):
    from repro.rfp.prefetch_table import PTEntry

    for pt_set, pairs in zip(pt.sets, dump["sets"]):
        pt_set.clear()
        for tag, fields in pairs:
            entry = PTEntry(tag)
            (entry.confidence, entry.utility, entry.stride, entry.inflight,
             entry.base_addr, pat_pointer, entry.page_offset) = fields
            entry.pat_pointer = (
                tuple(pat_pointer) if pat_pointer is not None else None
            )
            pt_set[tag] = entry
    (pt.trainings, pt.allocations, pt.evictions,
     pt.confidence_saturations) = dump["counters"]
    version, internal, gauss = dump["rng"]
    pt._rng.setstate((version, tuple(internal), gauss))


def capture(core, warmer):
    """Serialize ``core``'s post-warm state into a JSON-friendly dict.

    ``warmer`` is the :class:`FunctionalWarmer` that produced the state;
    its register file and instruction position are part of the snapshot.
    """
    trace = core.trace
    image_get = trace.memory_image.get
    hierarchy = core.hierarchy
    dtlb = hierarchy.dtlb
    state = {
        "workload": trace.name,
        "length": len(trace),
        "functional": warmer.warmed,
        "registers": list(warmer.registers.values),
        "memory": [
            [addr, value] for addr, value in core.memory.items()
            if image_get(addr) != value
        ],
        "path_history": core.frontend.path_history,
        "hierarchy": {
            "l1": _cache_dump(hierarchy.l1),
            "l2": _cache_dump(hierarchy.l2),
            "llc": _cache_dump(hierarchy.llc),
            "dtlb": {
                "sets": [list(tlb_set.keys()) for tlb_set in dtlb.sets],
                "hits": dtlb.hits,
                "misses": dtlb.misses,
            },
        },
        "md": {
            "table": list(core.md.table),
            "commit_tick": core.md._commit_tick,
            "violations": core.md.violations,
        },
    }
    prefetcher = hierarchy.l2_prefetcher
    if prefetcher is not None:
        state["hierarchy"]["l2_prefetcher"] = {
            "pages": [
                [page, [entry.min_line, entry.max_line,
                        entry.fwd_score, entry.bwd_score]]
                for page, entry in prefetcher.pages.items()
            ],
            "issued": prefetcher.issued,
            "trainings": prefetcher.trainings,
        }
    if core.hit_miss is not None:
        state["hit_miss"] = {
            "table": list(core.hit_miss.table),
            "predictions": core.hit_miss.predictions,
            "mispredicts": core.hit_miss.mispredicts,
        }
    rfp = core.rfp
    if rfp is not None:
        state["rfp"] = {"pt": _pt_dump(rfp.pt)}
        if rfp.pat is not None:
            state["rfp"]["pat"] = {
                "ways": [list(ways) for ways in rfp.pat.ways],
                "lru": [list(order) for order in rfp.pat.lru],
                "insertions": rfp.pat.insertions,
                "evictions": rfp.pat.evictions,
            }
        if rfp.context is not None:
            state["rfp"]["context"] = {
                "table": [
                    [index, [entry.tag, entry.last_addr, entry.stride,
                             entry.confidence]]
                    for index, entry in rfp.context.table.items()
                ],
                "predictions": rfp.context.predictions,
                "trainings": rfp.context.trainings,
            }
    return state


def restore(core, state):
    """Apply a :func:`capture` dict onto a freshly constructed core.

    Leaves ``core`` exactly as a functional warm over the first
    ``state["functional"]`` instructions would: fetch cursor at the
    boundary, rename unit seeded with the warmed register values, every
    warmed structure (contents and counters) restored.  Returns ``core``.
    """
    if state["length"] != len(core.trace):
        raise ValueError(
            "checkpoint for a %d-instruction trace restored onto a "
            "%d-instruction trace" % (state["length"], len(core.trace))
        )
    for addr, value in state["memory"]:
        core.memory[addr] = value
    hierarchy = core.hierarchy
    dumped = state["hierarchy"]
    _cache_load(hierarchy.l1, dumped["l1"])
    _cache_load(hierarchy.l2, dumped["l2"])
    _cache_load(hierarchy.llc, dumped["llc"])
    dtlb = hierarchy.dtlb
    for tlb_set, pages in zip(dtlb.sets, dumped["dtlb"]["sets"]):
        tlb_set.clear()
        for page in pages:
            tlb_set[page] = True
    dtlb.hits = dumped["dtlb"]["hits"]
    dtlb.misses = dumped["dtlb"]["misses"]
    prefetcher = hierarchy.l2_prefetcher
    if prefetcher is not None and "l2_prefetcher" in dumped:
        from repro.memory.prefetcher import _PageEntry

        prefetcher.pages.clear()
        for page, fields in dumped["l2_prefetcher"]["pages"]:
            entry = _PageEntry(0)
            (entry.min_line, entry.max_line,
             entry.fwd_score, entry.bwd_score) = fields
            prefetcher.pages[page] = entry
        prefetcher.issued = dumped["l2_prefetcher"]["issued"]
        prefetcher.trainings = dumped["l2_prefetcher"]["trainings"]
    if core.hit_miss is not None and "hit_miss" in state:
        core.hit_miss.table[:] = state["hit_miss"]["table"]
        core.hit_miss.predictions = state["hit_miss"]["predictions"]
        core.hit_miss.mispredicts = state["hit_miss"]["mispredicts"]
    core.md.table[:] = state["md"]["table"]
    core.md._commit_tick = state["md"]["commit_tick"]
    core.md.violations = state["md"]["violations"]
    if core.rfp is not None and "rfp" in state:
        _pt_load(core.rfp.pt, state["rfp"]["pt"])
        if core.rfp.pat is not None and "pat" in state["rfp"]:
            pat = core.rfp.pat
            pat.ways = [list(ways) for ways in state["rfp"]["pat"]["ways"]]
            pat.lru = [list(order) for order in state["rfp"]["pat"]["lru"]]
            pat.insertions = state["rfp"]["pat"]["insertions"]
            pat.evictions = state["rfp"]["pat"]["evictions"]
        if core.rfp.context is not None and "context" in state["rfp"]:
            from repro.rfp.context import _ContextEntry

            context = core.rfp.context
            context.table.clear()
            for index, fields in state["rfp"]["context"]["table"]:
                entry = _ContextEntry(fields[0], fields[1])
                entry.stride, entry.confidence = fields[2], fields[3]
                context.table[index] = entry
            context.predictions = state["rfp"]["context"]["predictions"]
            context.trainings = state["rfp"]["context"]["trainings"]
    core.frontend.path_history = state["path_history"]
    core.rename.seed_architectural(list(state["registers"]))
    core.frontend.cursor.rewind(state["functional"])
    return core


def resume_warmer(core, state):
    """A :class:`FunctionalWarmer` positioned at a restored checkpoint.

    :func:`restore` is applied to ``core`` first; the returned warmer's
    emulator state (registers, memory, position) matches the end of the
    checkpointed region, so ``warm(count)`` continues from there without
    replaying the prefix.
    """
    restore(core, state)
    warmer = FunctionalWarmer(core)
    warmer.registers.values[:] = state["registers"]
    warmer.warmed = state["functional"]
    return warmer


# ---------------------------------------------------------------------------
# the on-disk store


class CheckpointStore(object):
    """JSON-file-per-checkpoint store with checksummed envelopes.

    Mirrors :class:`~repro.sim.cache.ResultCache`: entries are
    ``{"checksum", "data"}`` envelopes, corruption is classified and
    evicted with a warning (the workload is then re-warmed), and every
    write is a locked, journaled commit (:mod:`repro.sim.journal`) —
    crash-safe against ``kill -9`` mid-commit and serialized against
    concurrent sweeps filling the same directory.  ``REPRO_JOURNAL=0``
    falls back to the bare per-process tmp + atomic rename discipline.
    """

    def __init__(self, directory=None):
        if directory is None:
            directory = os.environ.get("REPRO_CHECKPOINT_DIR") or os.path.join(
                os.path.dirname(os.path.dirname(os.path.dirname(
                    os.path.dirname(os.path.abspath(__file__))))),
                "benchmarks",
                ".checkpoints",
            )
        self.directory = directory
        self.hits = 0
        self.misses = 0
        #: Corruption incidents seen by this process (dicts with ``key``
        #: and ``reason``), drained via :meth:`pop_evictions`.
        self.eviction_log = []
        self._journaled = None

    def _path(self, key):
        return os.path.join(self.directory, key + ".ckpt.json")

    def _journal(self):
        """The directory's :class:`JournaledDir`, or None when disabled."""
        if journaling_env_disabled():
            return None
        if self._journaled is None:
            self._journaled = JournaledDir(self.directory, self.checksum)
        return self._journaled

    def _recover(self):
        """Replay an interrupted commit; free (one stat) when at rest."""
        journaled = self._journal()
        if journaled is None:
            return
        self.eviction_log.extend(journaled.recover())

    def key(self, workload, config, length, functional):
        return "%s-%d-%d-%s" % (
            workload, length, functional, warm_fingerprint(config)
        )

    @staticmethod
    def checksum(data):
        """Content hash of a checkpoint payload (canonical-JSON sha256)."""
        text = json.dumps(data, sort_keys=True, default=str)
        return hashlib.sha256(text.encode("utf-8")).hexdigest()[:16]

    def contains(self, key):
        """Presence probe without reading/validating the entry."""
        self._recover()
        return os.path.exists(self._path(key))

    def _read_envelope(self, path):
        """Read and classify the entry at ``path``.

        Returns ``(reason, envelope)`` — ``reason`` is None for a valid
        checksummed envelope, else a human-readable corruption class.
        """
        try:
            with open(path) as handle:
                envelope = json.load(handle)
        except (OSError, ValueError):
            return "unreadable (truncated or malformed JSON)", None
        if (
            not isinstance(envelope, dict)
            or "checksum" not in envelope
            or not isinstance(envelope.get("data"), dict)
        ):
            return "not a checksummed checkpoint envelope", None
        if self.checksum(envelope["data"]) != envelope["checksum"]:
            return "checksum mismatch (payload altered on disk)", None
        return None, envelope

    def get(self, key):
        """Return the checkpoint state dict for ``key``, or None."""
        path = self._path(key)
        self._recover()
        # Deterministic fault injection (REPRO_FAULT=corrupt_checkpoint:...)
        faults.corrupt_checkpoint_file(key, path)
        if not os.path.exists(path):
            self.misses += 1
            return None
        reason, envelope = self._read_envelope(path)
        if reason is not None:
            self._evict(key, path, reason)
            self.misses += 1
            return None
        self.hits += 1
        # Refresh recency for prune()'s LRU ordering.
        try:
            os.utime(path, None)
        except OSError:
            pass
        return envelope["data"]

    def _evict(self, key, path, reason):
        try:
            os.remove(path)
        except OSError:
            pass
        self.eviction_log.append({"key": key, "reason": reason})
        warnings.warn(
            "evicted corrupt checkpoint %s: %s — the workload will be "
            "re-warmed functionally" % (key, reason),
            RuntimeWarning,
            stacklevel=3,
        )

    def pop_evictions(self):
        """Drain and return the corruption incidents seen so far."""
        log, self.eviction_log = self.eviction_log, []
        return log

    def put(self, key, state):
        os.makedirs(self.directory, exist_ok=True)
        path = self._path(key)
        envelope = {"checksum": self.checksum(state), "data": state}
        journaled = self._journal()
        if journaled is not None:
            self._recover()
            # Locked, journaled commit (see repro.sim.journal).
            journaled.commit(key, path, envelope)
            return
        tmp = "%s.%d.tmp" % (path, os.getpid())
        with open(tmp, "w") as handle:
            json.dump(envelope, handle)
        os.replace(tmp, path)

    # -- maintenance (the CLI's ``repro checkpoint`` subcommand) ---------

    def entry_paths(self):
        """Paths of all checkpoint files currently in the store."""
        if not os.path.isdir(self.directory):
            return []
        return sorted(
            os.path.join(self.directory, name)
            for name in os.listdir(self.directory)
            if name.endswith(".ckpt.json")
        )

    def stats(self):
        """On-disk entry count/bytes plus this process's hit/miss counters.

        Every entry is checksum-validated first and corrupt ones are
        evicted, so ``entries``/``bytes`` are *post-eviction* totals: an
        entry evicted during this call appears in ``corrupt_evicted`` (and
        the eviction log) but never also in ``entries``.  An interrupted
        journaled commit is replayed first, so a mid-commit ``kill -9``
        never shows up here as corruption — replay already resolved it.
        """
        self._recover()
        total_bytes = 0
        surviving = 0
        corrupt = 0
        for path in self.entry_paths():
            reason, _ = self._read_envelope(path)
            if reason is not None:
                key = os.path.basename(path)[: -len(".ckpt.json")]
                self._evict(key, path, reason)
                corrupt += 1
                continue
            surviving += 1
            try:
                total_bytes += os.path.getsize(path)
            except OSError:
                pass
        return {
            "directory": self.directory,
            "entries": surviving,
            "bytes": total_bytes,
            "corrupt_evicted": corrupt,
            "hits": self.hits,
            "misses": self.misses,
        }

    def clear(self):
        """Delete every checkpoint (and stray temp files); returns the
        number of entries removed."""
        removed = 0
        if not os.path.isdir(self.directory):
            return removed
        for name in os.listdir(self.directory):
            if not (name.endswith(".ckpt.json") or ".ckpt.json." in name):
                continue
            try:
                os.remove(os.path.join(self.directory, name))
                removed += 1
            except OSError:
                pass
        return removed

    def prune(self, max_bytes):
        """LRU-evict entries until the store fits in ``max_bytes``.

        Recency is file mtime (refreshed on every :meth:`get` hit).
        Returns the number of entries removed.
        """
        entries = []
        total = 0
        for path in self.entry_paths():
            try:
                stat = os.stat(path)
            except OSError:
                continue
            entries.append((stat.st_mtime, path, stat.st_size))
            total += stat.st_size
        entries.sort()
        removed = 0
        for _mtime, path, size in entries:
            if total <= max_bytes:
                break
            try:
                os.remove(path)
            except OSError:
                continue
            total -= size
            removed += 1
        return removed


_default_store = None


def default_checkpoint_store():
    """The shared store, or None when ``REPRO_CHECKPOINTS`` disables it."""
    global _default_store
    if checkpoints_env_disabled():
        return None
    if _default_store is None or (
        os.environ.get("REPRO_CHECKPOINT_DIR")
        and _default_store.directory != os.environ["REPRO_CHECKPOINT_DIR"]
    ):
        _default_store = CheckpointStore()
    return _default_store


# ---------------------------------------------------------------------------
# high-level helpers


def warm_or_restore(core, workload, config, length, functional, store):
    """Bring ``core`` to the warm state at ``functional`` instructions.

    Restores from ``store`` when possible, else warms functionally (and
    files the result for next time).  Returns ``"restored"``, ``"warmed"``
    (store miss, checkpoint written) or ``"off"`` (no store).
    """
    if functional <= 0:
        return "off"
    if store is None:
        FunctionalWarmer(core).warm(functional)
        return "off"
    key = store.key(workload, config, length, functional)
    state = store.get(key)
    if state is not None:
        restore(core, state)
        return "restored"
    warmer = FunctionalWarmer(core).warm(functional)
    store.put(key, capture(core, warmer))
    return "warmed"


def ensure_checkpoints(trace, workload, config, length, positions, store,
                       engine="scalar"):
    """Write every missing checkpoint among ``positions`` in ONE warm pass.

    ``positions`` are functional instruction counts (ascending order not
    required; zeros are skipped).  The pass resumes from the deepest
    already-stored position preceding the first gap, so a partially-filled
    store is completed without replaying its prefix, and a fully-filled
    store costs only presence probes — zero functional warms.

    ``trace`` may be None; it is built lazily only if a warm is needed.
    ``engine`` selects who performs the pass: ``"scalar"`` (the
    :class:`FunctionalWarmer` loop below) or ``"batch"`` (the SoA engine in
    :mod:`repro.emu.batch` — bit-exact with scalar, and the natural entry
    point when several configs share this trace; see
    :func:`ensure_checkpoints_batch` for the multi-job form).
    Returns ``{position: "hit" | "warmed"}``.
    """
    if engine == "batch":
        [outcome] = ensure_checkpoints_batch(
            [(trace, workload, config, length, positions)], store
        )
        return outcome
    if engine != "scalar":
        raise ValueError("unknown warm engine %r" % (engine,))
    from repro.workloads.suite import build_workload

    wanted = sorted({int(p) for p in positions if p > 0})
    outcome = {}
    missing = []
    for position in wanted:
        if store.contains(store.key(workload, config, length, position)):
            outcome[position] = "hit"
        else:
            missing.append(position)
    if not missing:
        return outcome
    if trace is None:
        trace = build_workload(workload, length=length)
    from repro.core.core import OOOCore

    core = OOOCore(trace, config)
    warmer = None
    # Resume from the deepest stored position below the first gap.
    resume_from = [p for p in wanted if p < missing[0]
                   and outcome.get(p) == "hit"]
    if resume_from:
        state = store.get(store.key(workload, config, length,
                                    resume_from[-1]))
        if state is not None:
            warmer = resume_warmer(core, state)
    if warmer is None:
        warmer = FunctionalWarmer(core)
    for position in missing:
        warmer.warm(position)
        store.put(store.key(workload, config, length, position),
                  capture(core, warmer))
        outcome[position] = "warmed"
    return outcome


def ensure_checkpoints_batch(jobs, store, width=None, chunk=None):
    """Batched :func:`ensure_checkpoints`: N warm jobs, one SoA engine run.

    ``jobs`` is a list of ``(trace_or_None, workload, config, length,
    positions)`` tuples.  Jobs that share a ``(workload, length)`` trace —
    a config sweep — advance through it in lockstep, and lanes whose
    configs agree on every cache-relevant field additionally share a
    single cache/DTLB advance (functional warming has no feedback from
    predictor state into cache contents, so the split is exact).  Emits
    byte-identical checkpoint payloads to the scalar path; returns one
    ``{position: "hit" | "warmed"}`` dict per job, in job order.
    """
    from repro.emu.batch import warm_batch

    return warm_batch(jobs, store=store, width=width, chunk=chunk)
