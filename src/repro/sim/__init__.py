"""Simulation drivers: single runs, cached experiment sweeps, oracles."""

from repro.sim.runner import SimResult, simulate
from repro.sim.cache import ResultCache, simulate_cached
from repro.sim.oracle import oracle_config, ORACLE_MODES
from repro.sim.experiments import (
    run_suite,
    suite_speedup,
    default_workloads,
    default_length,
    default_warmup,
)

__all__ = [
    "SimResult",
    "simulate",
    "ResultCache",
    "simulate_cached",
    "oracle_config",
    "ORACLE_MODES",
    "run_suite",
    "suite_speedup",
    "default_workloads",
    "default_length",
    "default_warmup",
]
