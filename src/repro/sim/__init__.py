"""Simulation drivers: single runs, cached experiment sweeps, oracles."""

from repro.sim.runner import SCHEMA_VERSION, SimResult, simulate
from repro.sim.cache import ResultCache, default_cache, simulate_cached
from repro.sim.defaults import DEFAULT_LENGTH, DEFAULT_WARMUP
from repro.sim.oracle import oracle_config, ORACLE_MODES
from repro.sim.parallel import (
    TimingReport,
    default_jobs,
    run_jobs,
    run_matrix,
    run_suite_parallel,
)
from repro.sim.experiments import (
    run_suite,
    suite_speedup,
    default_workloads,
    default_length,
    default_warmup,
)

__all__ = [
    "SCHEMA_VERSION",
    "SimResult",
    "simulate",
    "ResultCache",
    "default_cache",
    "simulate_cached",
    "DEFAULT_LENGTH",
    "DEFAULT_WARMUP",
    "oracle_config",
    "ORACLE_MODES",
    "TimingReport",
    "default_jobs",
    "run_jobs",
    "run_matrix",
    "run_suite_parallel",
    "run_suite",
    "suite_speedup",
    "default_workloads",
    "default_length",
    "default_warmup",
]
