"""Shared experiment plumbing for the benchmark harness.

Environment knobs (all optional):

- ``REPRO_WORKLOADS`` — "all" (default) or an integer N to run only the
  first N suite workloads (quick mode).
- ``REPRO_LENGTH`` — trace length in instructions (default 20000).
- ``REPRO_WARMUP`` — warmup instructions excluded from measurement
  (default 4000).
"""

import os

from repro.sim.cache import simulate_cached
from repro.stats.report import geomean, speedup
from repro.workloads.suite import workload_names


def default_workloads():
    spec = os.environ.get("REPRO_WORKLOADS", "all")
    names = workload_names()
    if spec == "all":
        return names
    return names[: max(1, int(spec))]


def default_length():
    return int(os.environ.get("REPRO_LENGTH", "12000"))


def default_warmup():
    return int(os.environ.get("REPRO_WARMUP", "2000"))


def run_suite(config, workloads=None, length=None, warmup=None):
    """Run (cache-backed) every workload under ``config``.

    Returns {workload_name: SimResult}.
    """
    workloads = workloads if workloads is not None else default_workloads()
    length = length if length is not None else default_length()
    warmup = warmup if warmup is not None else default_warmup()
    return {
        name: simulate_cached(name, config, length=length, warmup=warmup)
        for name in workloads
    }


def suite_speedup(feature_results, baseline_results):
    """Per-category and overall geomean speedups plus per-workload ratios.

    Returns ``(per_workload, per_category, overall)``.
    """
    per_workload = {}
    per_category_values = {}
    for name, result in feature_results.items():
        ratio = speedup(result.ipc, baseline_results[name].ipc)
        per_workload[name] = ratio
        per_category_values.setdefault(result.category, []).append(ratio)
    per_category = {
        category: geomean(values)
        for category, values in sorted(per_category_values.items())
    }
    overall = geomean(list(per_workload.values()))
    return per_workload, per_category, overall


def mean_fraction(results, numerator_counter):
    """Average an RFP counter as a fraction of loads across results."""
    values = [r.rfp_fraction(numerator_counter) for r in results.values()]
    return sum(values) / len(values) if values else 0.0
