"""Shared experiment plumbing for the benchmark harness.

Environment knobs (all optional):

- ``REPRO_WORKLOADS`` — "all" (default) or an integer N to run only the
  first N suite workloads (quick mode).
- ``REPRO_LENGTH`` — trace length in instructions (default
  :data:`~repro.sim.defaults.DEFAULT_LENGTH` = 40000).
- ``REPRO_WARMUP`` — warmup instructions excluded from measurement
  (default :data:`~repro.sim.defaults.DEFAULT_WARMUP` = 20000; the
  warmup region runs through the functional fast-forward engine unless
  ``--no-ff`` / ``REPRO_FF=0``).
- ``REPRO_JOBS`` — worker processes for suite runs (default
  ``os.cpu_count()``; 1 forces fully serial execution).
- ``REPRO_PROGRESS`` — stream per-job progress lines to stderr.
"""

import os

from repro.sim.defaults import DEFAULT_LENGTH, DEFAULT_WARMUP
from repro.sim.parallel import default_jobs, run_suite_parallel
from repro.stats.report import geomean, speedup
from repro.workloads.suite import workload_names


def default_workloads():
    spec = os.environ.get("REPRO_WORKLOADS", "all")
    names = workload_names()
    if spec == "all":
        return names
    return names[: max(1, int(spec))]


def default_length():
    return int(os.environ.get("REPRO_LENGTH", str(DEFAULT_LENGTH)))


def default_warmup():
    return int(os.environ.get("REPRO_WARMUP", str(DEFAULT_WARMUP)))


def run_suite(config, workloads=None, length=None, warmup=None,
              parallel=None, jobs=None, cache=None, progress=None,
              job_timeout=None, retries=None, keep_going=False,
              sampling=None):
    """Run (cache-backed) every workload under ``config``.

    Uncached (workload, config) pairs are fanned out over the
    :mod:`repro.sim.parallel` worker pool; results are identical to serial
    execution regardless of worker count.

    Args:
        parallel: ``True`` forces the pool, ``False`` forces in-process
            serial execution, ``None`` (default) uses the pool whenever
            more than one worker is available (``REPRO_JOBS`` /
            ``os.cpu_count()``).
        jobs: worker count override (else ``REPRO_JOBS``).
        sampling: optional interval-sampling spec (``{"samples": K, ...}``,
            see :func:`~repro.sim.sampling.normalize_spec`): measure K
            short detailed intervals per workload from shared warm-state
            checkpoints and report mean IPC ± CI instead of one long
            detailed window.

    Returns {workload_name: SimResult}.
    """
    workloads = workloads if workloads is not None else default_workloads()
    length = length if length is not None else default_length()
    warmup = warmup if warmup is not None else default_warmup()
    max_workers = jobs if jobs is not None else default_jobs()
    if parallel is False:
        max_workers = 1
    elif parallel is True:
        max_workers = max(2, max_workers)
    results, _ = run_suite_parallel(
        config, workloads, length, warmup,
        cache=cache, max_workers=max_workers, progress=progress,
        job_timeout=job_timeout, retries=retries, keep_going=keep_going,
        sampling=sampling,
    )
    return results


def suite_speedup(feature_results, baseline_results):
    """Per-category and overall geomean speedups plus per-workload ratios.

    Returns ``(per_workload, per_category, overall)``.  Workloads present
    on only one side (a keep-going run dropped the other cell) are skipped
    — a partial sweep still yields figures for every healthy pair.
    """
    per_workload = {}
    per_category_values = {}
    for name, result in feature_results.items():
        base = baseline_results.get(name)
        if base is None:
            continue
        ratio = speedup(result.ipc, base.ipc)
        per_workload[name] = ratio
        per_category_values.setdefault(result.category, []).append(ratio)
    per_category = {
        category: geomean(values)
        for category, values in sorted(per_category_values.items())
    }
    overall = geomean(list(per_workload.values()))
    return per_workload, per_category, overall


def mean_fraction(results, numerator_counter):
    """Average an RFP counter as a fraction of loads across results."""
    values = [r.rfp_fraction(numerator_counter) for r in results.values()]
    return sum(values) / len(values) if values else 0.0
