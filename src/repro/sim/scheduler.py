"""Supervised shard-pool scheduler: the service layer over the job engine.

:mod:`repro.sim.parallel` spawns one worker process per job — simple, and
right for a single sweep.  A simulation *service* wants the opposite
shape: N long-lived **shard** processes fed jobs over the existing
per-job pipe protocol, supervised for health rather than per-job
lifetime.  This module provides that layer:

- **Shards** (:func:`_shard_main`): long-lived children that loop
  ``recv job -> run -> send result``, reusing the exact worker body
  (:func:`repro.sim.parallel._run_job`) and wire protocol
  (``("ok", key, data, seconds)`` / ``("err", ...)``), plus a heartbeat
  thread that reports liveness every ``REPRO_HEARTBEAT_INTERVAL`` seconds
  (default 0.25).
- **Supervision** (:class:`ShardPool`): a selector loop over all shard
  pipes.  A shard that misses ``REPRO_HEARTBEAT_MISSES`` consecutive
  heartbeats (default 20) or whose pipe hits EOF is killed and its
  in-flight job requeued to a healthy shard; a replacement is spawned
  with exponential backoff (``REPRO_RESPAWN_BACKOFF`` base seconds,
  doubling per consecutive failure), and a shard that crash-loops
  ``REPRO_CRASH_LOOP`` times (default 3) within ``REPRO_CRASH_WINDOW``
  seconds (default 30) is **quarantined** — benched for the backoff
  period with an event on :attr:`ShardPool.events`.  Job-level retry
  accounting (attempts, backoff, keep-going manifests) matches the
  worker-per-job engine exactly, so results are byte-identical.
- **Admission control + fair-share lanes**: two dispatch lanes,
  ``interactive`` and ``bulk``.  The dispatcher always serves interactive
  jobs first at chunk (one job) granularity, so an interactive
  ``repro run`` preempts a 10k-cell bulk sweep at the next free shard
  rather than queueing behind it.  :meth:`ShardPool.submit` bounds the
  total queue at ``REPRO_MAX_QUEUE`` (default 1024) and raises
  :class:`PoolSaturated` — backpressure, not an unbounded queue.
- **Service front end** (:class:`SweepService` + ``repro serve``): an
  asyncio JSON-lines TCP server feeding the pool in background mode;
  results are committed to the result cache in the supervisor thread
  (the parent-side commit discipline the whole engine uses) and answered
  from the cache when already present.

Fault injection (``REPRO_FAULT``): ``kill_shard:shard=N:after=C`` and
``hang_heartbeat:shard=N:seconds=S`` target shard children by id and
incarnation so CI drives the quarantine/respawn/requeue paths
deterministically; see :mod:`repro.sim.faults`.

``run_jobs(..., shards=N)`` (or ``REPRO_SHARDS``) routes a normal sweep
through this pool in blocking mode; ``repro suite --shards N`` exposes it
on the CLI and :mod:`repro.sim.chaos` proves the whole stack converges
byte-identically under injected faults.
"""

import asyncio
import json
import multiprocessing
import os
import threading
import time
from collections import deque
from multiprocessing.connection import wait as _wait_connections

from repro.core.config import baseline, baseline_2x
from repro.sim import faults
from repro.sim.defaults import DEFAULT_LENGTH, DEFAULT_WARMUP
from repro.sim.parallel import (
    CLASS_CRASH, CLASS_TIMEOUT, RETRYABLE, WorkerError, _PendingJob,
    _run_job, classify_failure, default_retries, drain_timeout_default,
    resolve_job_timeout, retry_backoff_base, start_method,
)


class PoolSaturated(RuntimeError):
    """Admission control rejected a submit: the queue is at its bound."""


def heartbeat_interval_default():
    """Seconds between shard heartbeats (``REPRO_HEARTBEAT_INTERVAL``)."""
    env = os.environ.get("REPRO_HEARTBEAT_INTERVAL")
    if env:
        try:
            return max(0.01, float(env))
        except ValueError:
            pass
    return 0.25


def heartbeat_miss_limit_default():
    """Consecutive missed heartbeats before quarantine
    (``REPRO_HEARTBEAT_MISSES``)."""
    env = os.environ.get("REPRO_HEARTBEAT_MISSES")
    if env:
        try:
            return max(2, int(env))
        except ValueError:
            pass
    return 20


def crash_loop_limit_default():
    """Shard deaths within the window that trigger a crash-loop
    quarantine (``REPRO_CRASH_LOOP``)."""
    env = os.environ.get("REPRO_CRASH_LOOP")
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            pass
    return 3


def crash_loop_window_default():
    """Sliding window seconds for crash-loop detection
    (``REPRO_CRASH_WINDOW``)."""
    env = os.environ.get("REPRO_CRASH_WINDOW")
    if env:
        try:
            return max(1.0, float(env))
        except ValueError:
            pass
    return 30.0


def respawn_backoff_default():
    """Respawn delay base seconds, doubling per consecutive failure
    (``REPRO_RESPAWN_BACKOFF``)."""
    env = os.environ.get("REPRO_RESPAWN_BACKOFF")
    if env:
        try:
            return max(0.0, float(env))
        except ValueError:
            pass
    return 0.25


def max_queue_default():
    """Admission-control queue bound (``REPRO_MAX_QUEUE``)."""
    env = os.environ.get("REPRO_MAX_QUEUE")
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            pass
    return 1024


def _shard_main(shard_id, incarnation, conn, hb_interval, parent_fd=None):
    """Shard child body: loop ``recv job -> run -> send``, heartbeating.

    Wire protocol (a superset of the per-job worker's): the parent sends
    ``("job", item)`` or ``("stop",)``; the shard answers every job with
    ``("ok", key, data, seconds)`` or ``("err", workload, config_name,
    detail, root_cause)`` and interleaves ``("hb", shard_id)`` liveness
    beats from a daemon thread.  A send lock keeps the two writers from
    interleaving a message mid-frame.

    Fault hooks: ``kill_shard`` hard-exits at job receipt once enough
    jobs have finished; ``hang_heartbeat`` wedges the shard — no beats,
    no progress — so the supervisor's quarantine must fire.
    """
    if parent_fd is not None:
        # Fork start method: this child inherited a copy of its own
        # pipe's *parent* end.  Close it, or the child would hold its
        # peer open and never see EOF when the supervisor dies (e.g. a
        # kill -9 mid-commit), leaving an orphan shard blocked in recv.
        try:
            os.close(parent_fd)
        except OSError:
            pass
    send_lock = threading.Lock()
    stop = threading.Event()
    wedge_until = [0.0]  # heartbeats are suppressed until this monotonic time

    def _heartbeats():
        while not stop.is_set():
            time.sleep(hb_interval)
            if time.monotonic() < wedge_until[0]:
                continue
            try:
                with send_lock:
                    conn.send(("hb", shard_id))
            except (OSError, ValueError):
                return

    threading.Thread(target=_heartbeats, daemon=True).start()
    jobs_done = 0
    kill_after = faults.shard_kill_after(shard_id, incarnation)
    hang = faults.shard_heartbeat_hang(shard_id, incarnation)
    try:
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                break
            if not isinstance(message, tuple) or message[0] != "job":
                break  # ("stop",) or anything unexpected: exit cleanly
            if kill_after is not None and jobs_done >= kill_after:
                os._exit(32)  # a true crash: no goodbye on the pipe
            if hang is not None and jobs_done >= hang[0]:
                wedge_until[0] = time.monotonic() + hang[1]
                time.sleep(hang[1])
                hang = None
            item = message[1]
            try:
                key, data, seconds = _run_job(item)
                with send_lock:
                    conn.send(("ok", key, data, seconds))
            except WorkerError as err:
                with send_lock:
                    conn.send(("err", err.workload, err.config_name,
                               err.detail, err.root_cause))
            jobs_done += 1
    except BaseException:
        pass  # broken pipe / teardown: the parent sees EOF
    finally:
        stop.set()
        try:
            conn.close()
        except OSError:
            pass


class _ShardSlot(object):
    """Supervisor-side state for one shard position in the pool."""

    __slots__ = ("index", "incarnation", "process", "conn", "last_hb",
                 "job", "deadline", "down_until", "consecutive_failures",
                 "crash_times", "respawns", "jobs_completed")

    def __init__(self, index):
        self.index = index
        self.incarnation = 0
        self.process = None
        self.conn = None
        self.last_hb = 0.0
        self.job = None          # the in-flight pending job, if any
        self.deadline = None     # per-job watchdog deadline
        self.down_until = 0.0    # respawn eligibility (monotonic)
        self.consecutive_failures = 0
        self.crash_times = deque()  # recent deaths, for crash-loop detection
        self.respawns = 0
        self.jobs_completed = 0


class ShardPool(object):
    """N supervised long-lived shards behind two fair-share lanes.

    Two modes share one supervisor loop:

    - :meth:`execute` (blocking) — run a list of pending jobs to
      completion for :func:`repro.sim.parallel.run_jobs`; completion
      callbacks fire in the caller's thread, preserving the parent-side
      incremental cache commit.
    - :meth:`start` + :meth:`submit` (service) — a background supervisor
      thread serves jobs as they arrive, waking on a self-pipe; each job
      carries its own completion callback.  Used by ``repro serve``.
    """

    def __init__(self, shards, job_timeout=None, retries=None,
                 keep_going=True, heartbeat_interval=None, miss_limit=None,
                 crash_loop_limit=None, crash_loop_window=None,
                 respawn_backoff=None, max_queue=None):
        self.shards = max(1, int(shards))
        self.job_timeout = job_timeout
        self.retries = retries if retries is not None else default_retries()
        self.keep_going = keep_going
        self.hb_interval = (heartbeat_interval if heartbeat_interval
                            is not None else heartbeat_interval_default())
        self.miss_limit = (miss_limit if miss_limit is not None
                           else heartbeat_miss_limit_default())
        self.crash_loop_limit = (crash_loop_limit if crash_loop_limit
                                 is not None else crash_loop_limit_default())
        self.crash_loop_window = (crash_loop_window if crash_loop_window
                                  is not None else crash_loop_window_default())
        self.respawn_backoff = (respawn_backoff if respawn_backoff
                                is not None else respawn_backoff_default())
        self.max_queue = (max_queue if max_queue is not None
                          else max_queue_default())
        self.backoff = retry_backoff_base()
        #: Supervision events (spawn/death/quarantine/watchdog), in order.
        self.events = []
        self._ctx = multiprocessing.get_context(start_method())
        self._slots = [_ShardSlot(i) for i in range(self.shards)]
        self._lanes = {"interactive": deque(), "bulk": deque()}
        self._lane_of = {}       # id(pj) -> lane name
        self._callbacks = {}     # id(pj) -> service completion callback
        self._submit_lock = threading.Lock()
        self._tick = min(0.05, self.hb_interval)
        self._stop_flag = False
        self._fatal = None
        self._service_thread = None
        self._wake_r = None
        self._wake_w = None
        # execute-mode completion hooks (None in service mode)
        self._on_success = None
        self._on_terminal = None
        self._on_aborted = None
        self._on_retry = None

    # -- events / stats --------------------------------------------------

    def _event(self, kind, slot, **extra):
        record = {"event": kind, "shard": slot.index,
                  "incarnation": slot.incarnation}
        record.update(extra)
        self.events.append(record)

    def queued(self):
        """Jobs waiting in both lanes (admission-control occupancy)."""
        return sum(len(lane) for lane in self._lanes.values())

    def stats(self):
        """A JSON-friendly snapshot for the service's ``stats`` op."""
        return {
            "shards": self.shards,
            "queued": {name: len(lane)
                       for name, lane in self._lanes.items()},
            "max_queue": self.max_queue,
            "slots": [
                {
                    "shard": slot.index,
                    "incarnation": slot.incarnation,
                    "alive": slot.process is not None,
                    "busy": slot.job is not None,
                    "respawns": slot.respawns,
                    "jobs_completed": slot.jobs_completed,
                }
                for slot in self._slots
            ],
            "events": len(self.events),
        }

    # -- shard lifecycle -------------------------------------------------

    def _spawn(self, slot):
        slot.incarnation += 1
        parent_conn, child_conn = self._ctx.Pipe()
        # Under fork the child inherits our parent_conn fd; hand it the
        # number so it can close the copy (see _shard_main).  Under spawn
        # nothing is inherited and fd numbers don't transfer: pass None.
        parent_fd = (parent_conn.fileno()
                     if self._ctx.get_start_method() == "fork" else None)
        process = self._ctx.Process(
            target=_shard_main,
            args=(slot.index, slot.incarnation, child_conn,
                  self.hb_interval, parent_fd),
            daemon=True,
        )
        process.start()
        child_conn.close()
        slot.process = process
        slot.conn = parent_conn
        slot.last_hb = time.monotonic()
        slot.job = None
        slot.deadline = None
        self._event("spawn" if slot.incarnation == 1 else "respawn", slot)

    def _kill_slot(self, slot):
        """Terminate a shard process and close its pipe (no accounting)."""
        process, conn = slot.process, slot.conn
        slot.process = None
        slot.conn = None
        if conn is not None:
            try:
                conn.close()
            except OSError:
                pass
        if process is not None:
            if process.is_alive():
                process.terminate()
                process.join(1.0)
                if process.is_alive():
                    process.kill()
                    process.join(1.0)
            else:
                process.join(0)

    def _bench(self, slot, now, reason, quarantined):
        """Record a death/quarantine and schedule the respawn backoff."""
        slot.consecutive_failures += 1
        slot.crash_times.append(now)
        while slot.crash_times and \
                slot.crash_times[0] < now - self.crash_loop_window:
            slot.crash_times.popleft()
        crash_looping = len(slot.crash_times) >= self.crash_loop_limit
        delay = self.respawn_backoff * (
            2 ** min(slot.consecutive_failures - 1, 8))
        slot.down_until = now + delay
        slot.respawns += 1
        self._event(
            "quarantine" if (quarantined or crash_looping) else "shard_died",
            slot, reason=reason, backoff_seconds=round(delay, 3),
            crash_loop=crash_looping,
        )

    def _shard_died(self, slot, now):
        """Pipe EOF: the shard process is gone; requeue its job."""
        pj = slot.job
        slot.job = None
        slot.deadline = None
        process = slot.process
        exitcode = None
        if process is not None:
            process.join(1.0)
            exitcode = process.exitcode
        incarnation = slot.incarnation
        self._kill_slot(slot)
        self._bench(slot, now, "process died (exit %s)" % exitcode,
                    quarantined=False)
        if pj is not None:
            self._fail_attempt(
                pj, CLASS_CRASH,
                "shard %d (incarnation %d) died (exit %s) while running "
                "attempt %d" % (slot.index, incarnation, exitcode,
                                pj.tries + 1),
                None, now)

    def _quarantine(self, slot, now, reason):
        """Heartbeat-miss (or wedge) quarantine: kill, requeue, bench."""
        pj = slot.job
        slot.job = None
        slot.deadline = None
        incarnation = slot.incarnation
        self._kill_slot(slot)
        self._bench(slot, now, reason, quarantined=True)
        if pj is not None:
            self._fail_attempt(
                pj, CLASS_TIMEOUT,
                "shard %d (incarnation %d) quarantined (%s) while running "
                "attempt %d; job requeued" % (slot.index, incarnation,
                                              reason, pj.tries + 1),
                None, now)

    def _watchdog_kill(self, slot, now):
        """Per-job deadline blown: kill the shard, fail the attempt."""
        pj = slot.job
        slot.job = None
        slot.deadline = None
        self._kill_slot(slot)
        # The job hung, not the shard: respawn promptly, no crash-loop
        # penalty growth beyond the single slot restart.
        slot.down_until = now
        slot.respawns += 1
        self._event("watchdog_kill", slot, job=pj.key if pj else None)
        if pj is not None:
            self._fail_attempt(
                pj, CLASS_TIMEOUT,
                "watchdog: attempt %d exceeded its %.1fs deadline; shard "
                "killed and respawned"
                % (pj.tries + 1,
                   resolve_job_timeout(self.job_timeout, pj.job[2])),
                None, now)

    # -- job accounting --------------------------------------------------

    def _requeue(self, pj, front=False):
        lane = self._lanes[self._lane_of.get(id(pj), "bulk")]
        if front:
            lane.appendleft(pj)
        else:
            lane.append(pj)

    def _complete_ok(self, pj, data, seconds):
        callback = self._callbacks.pop(id(pj), None)
        self._lane_of.pop(id(pj), None)
        if callback is not None:
            callback(("ok", data, seconds, pj))
        elif self._on_success is not None:
            self._on_success(pj, data, seconds)

    def _complete_terminal(self, pj):
        callback = self._callbacks.pop(id(pj), None)
        self._lane_of.pop(id(pj), None)
        if callback is not None:
            callback(("failed", pj.last_class, pj.last_detail, pj))
        elif self._on_terminal is not None:
            self._on_terminal(pj)

    def _complete_aborted(self, pj, detail):
        callback = self._callbacks.pop(id(pj), None)
        self._lane_of.pop(id(pj), None)
        if callback is not None:
            callback(("aborted", detail, None, pj))
        elif self._on_aborted is not None:
            self._on_aborted(pj, detail)

    def _fail_attempt(self, pj, classification, detail, root_cause, now):
        pj.tries += 1
        pj.last_class = classification
        pj.last_detail = detail
        pj.last_root = root_cause
        if classification in RETRYABLE and pj.tries <= self.retries:
            pj.next_start = now + self.backoff * (2 ** (pj.tries - 1))
            self._requeue(pj)
            if self._on_retry is not None:
                self._on_retry(pj)
            return
        if self.keep_going or id(pj) in self._callbacks:
            self._complete_terminal(pj)
            return
        self._fatal = WorkerError(pj.workload_name, pj.config_name,
                                  detail, root_cause)

    # -- dispatch --------------------------------------------------------

    def _next_ready(self, now):
        """The next runnable job: interactive lane first, then bulk —
        chunk-granularity preemption of bulk sweeps."""
        for name in ("interactive", "bulk"):
            lane = self._lanes[name]
            for _ in range(len(lane)):
                pj = lane.popleft()
                if pj.next_start <= now:
                    return pj
                lane.append(pj)  # still backing off
        return None

    def _dispatch(self, slot, pj, now):
        item = (pj.key, pj.job, pj.trace_path, pj.index, pj.tries + 1, True)
        try:
            slot.conn.send(("job", item))
        except (OSError, ValueError):
            self._requeue(pj, front=True)
            self._shard_died(slot, now)
            return
        slot.job = pj
        timeout = resolve_job_timeout(self.job_timeout, pj.job[2])
        slot.deadline = now + timeout if timeout is not None else None

    def _handle_message(self, slot, message, now):
        kind = message[0]
        if kind == "hb":
            slot.last_hb = now
            return
        pj = slot.job
        slot.job = None
        slot.deadline = None
        slot.last_hb = now
        if pj is None:
            return  # late result from a job already requeued elsewhere
        if kind == "ok":
            slot.consecutive_failures = 0
            slot.jobs_completed += 1
            self._complete_ok(pj, message[2], message[3])
        else:  # ("err", workload, config_name, detail, root_cause)
            detail, root_cause = message[3], message[4]
            self._fail_attempt(pj, classify_failure(detail, root_cause),
                               detail, root_cause, now)

    # -- the supervisor loop ---------------------------------------------

    def _busy_slots(self):
        return [slot for slot in self._slots if slot.job is not None]

    def _run_loop(self, guard=None, until_idle=True):
        drain_deadline = None
        while True:
            if self._stop_flag or self._fatal is not None:
                break
            if guard is not None and guard.triggered:
                break
            now = time.monotonic()
            draining = guard is not None and guard.draining
            if draining:
                if drain_deadline is None:
                    drain_deadline = now + drain_timeout_default()
                while True:
                    pj = self._next_ready(float("inf"))
                    if pj is None:
                        break
                    self._complete_aborted(
                        pj, "SIGTERM drain: job never started"
                        if pj.tries == 0 else
                        "SIGTERM drain: retry abandoned after attempt %d"
                        % pj.tries)
                busy = self._busy_slots()
                if not busy:
                    break
                if now >= drain_deadline:
                    for slot in busy:
                        pj = slot.job
                        slot.job = None
                        self._kill_slot(slot)
                        self._complete_aborted(
                            pj, "SIGTERM drain: in-flight chunk exceeded "
                            "the %.1fs drain deadline; shard killed"
                            % drain_timeout_default())
                    break
            queued = self.queued()
            busy = self._busy_slots()
            if until_idle and not queued and not busy:
                break
            # Respawn benched shards once their backoff elapses — eagerly
            # in service mode (capacity for future submits), only while
            # work remains in blocking mode.
            if not draining and (queued or not until_idle):
                for slot in self._slots:
                    if slot.process is None and now >= slot.down_until:
                        self._spawn(slot)
            # Dispatch: interactive lane preempts bulk at chunk boundary.
            if not draining:
                for slot in self._slots:
                    if slot.process is None or slot.job is not None:
                        continue
                    pj = self._next_ready(now)
                    if pj is None:
                        break
                    self._dispatch(slot, pj, now)
            wait_on = [slot.conn for slot in self._slots
                       if slot.process is not None]
            by_conn = {slot.conn: slot for slot in self._slots
                       if slot.process is not None}
            if self._wake_r is not None:
                wait_on.append(self._wake_r)
            if not wait_on:
                # Every shard benched and backing off: sleep to the next
                # respawn eligibility (capped to stay signal-responsive).
                soonest = min((slot.down_until for slot in self._slots),
                              default=now)
                time.sleep(min(max(soonest - now, 0.0), self._tick) or 0.005)
                continue
            for ready in _wait_connections(wait_on, timeout=self._tick):
                if self._wake_r is not None and ready == self._wake_r:
                    try:
                        os.read(self._wake_r, 4096)
                    except OSError:
                        pass
                    continue
                slot = by_conn.get(ready)
                if slot is None or slot.process is None:
                    continue
                try:
                    message = ready.recv()
                except (EOFError, OSError):
                    self._shard_died(slot, time.monotonic())
                    continue
                self._handle_message(slot, message, time.monotonic())
            # Health checks: per-job watchdog, then heartbeat misses.
            now = time.monotonic()
            miss_window = self.hb_interval * self.miss_limit
            for slot in self._slots:
                if slot.process is None:
                    continue
                if slot.job is not None and slot.deadline is not None \
                        and now >= slot.deadline:
                    self._watchdog_kill(slot, now)
                    continue
                if now - slot.last_hb > miss_window:
                    self._quarantine(
                        slot, now,
                        "missed %d heartbeats (%.1fs silent)"
                        % (self.miss_limit, now - slot.last_hb))

    def _shutdown_shards(self):
        for slot in self._slots:
            if slot.process is None:
                continue
            try:
                slot.conn.send(("stop",))
            except (OSError, ValueError):
                pass
        deadline = time.monotonic() + 1.0
        for slot in self._slots:
            if slot.process is None:
                continue
            slot.process.join(max(0.0, deadline - time.monotonic()))
            self._kill_slot(slot)

    # -- blocking mode (run_jobs) ----------------------------------------

    def execute(self, pending, guard=None, on_success=None, on_terminal=None,
                on_aborted=None, on_retry=None):
        """Run ``pending`` jobs (pending-job protocol objects) to
        completion, firing the completion callbacks in this thread.

        Raises the terminal :class:`WorkerError` after shutting the
        shards down when ``keep_going`` is False; with a ``guard``,
        honours SIGINT (stop now; the caller re-raises
        ``KeyboardInterrupt``) and SIGTERM (graceful drain — in-flight
        chunks finish, queued jobs abort).
        """
        self._on_success = on_success
        self._on_terminal = on_terminal
        self._on_aborted = on_aborted
        self._on_retry = on_retry
        pending = list(pending)
        for pj in pending:
            self._lane_of[id(pj)] = "bulk"
            self._lanes["bulk"].append(pj)
        # Never hold more shards than jobs: trim the pool so the respawn
        # path can't resurrect slots the workload cannot use.
        self._slots = self._slots[: max(1, min(self.shards, len(pending)))]
        for slot in self._slots:
            self._spawn(slot)
        try:
            self._run_loop(guard=guard, until_idle=True)
        finally:
            self._shutdown_shards()
        if self._fatal is not None and not self.keep_going:
            raise self._fatal

    # -- service mode (repro serve) --------------------------------------

    def start(self):
        """Start the background supervisor thread (service mode)."""
        if self._service_thread is not None:
            return
        self._wake_r, self._wake_w = os.pipe()
        for slot in self._slots:
            self._spawn(slot)
        self._service_thread = threading.Thread(
            target=self._run_loop, kwargs={"until_idle": False},
            name="shard-pool-supervisor", daemon=True)
        self._service_thread.start()

    def _wake(self):
        if self._wake_w is not None:
            try:
                os.write(self._wake_w, b"x")
            except OSError:
                pass

    def submit(self, pj, lane="bulk", callback=None):
        """Enqueue one job; ``callback(outcome)`` fires in the supervisor
        thread with ``("ok", data, seconds, pj)``, ``("failed", class,
        detail, pj)`` or ``("aborted", detail, None, pj)``.

        Raises :class:`PoolSaturated` when the queue is at its bound —
        the caller sheds load instead of queueing without limit.
        """
        if lane not in self._lanes:
            raise ValueError("unknown lane %r" % (lane,))
        with self._submit_lock:
            if self.queued() >= self.max_queue:
                raise PoolSaturated(
                    "queue full (%d jobs; REPRO_MAX_QUEUE=%d)"
                    % (self.queued(), self.max_queue))
            if callback is not None:
                self._callbacks[id(pj)] = callback
            self._lane_of[id(pj)] = lane
            self._lanes[lane].append(pj)
        self._wake()

    def shutdown(self):
        """Stop the service loop (if running) and all shards."""
        self._stop_flag = True
        self._wake()
        if self._service_thread is not None:
            self._service_thread.join(5.0)
            self._service_thread = None
        self._shutdown_shards()
        for fd in (self._wake_r, self._wake_w):
            if fd is not None:
                try:
                    os.close(fd)
                except OSError:
                    pass
        self._wake_r = self._wake_w = None


# ---------------------------------------------------------------------------
# the asyncio front end (repro serve)


class SweepService(object):
    """JSON-lines TCP front end over a :class:`ShardPool`.

    One request per line; one JSON response per line.  Ops:

    - ``{"op": "ping"}`` -> ``{"ok": true, "pong": true}``
    - ``{"op": "stats"}`` -> pool + cache occupancy
    - ``{"op": "run", "workload": NAME, "rfp": bool, "core_2x": bool,
      "length": N, "warmup": N, "lane": "interactive"|"bulk"}`` ->
      ``{"ok": true, "source": "cache"|"run", "result": {...}}``

    ``run`` answers straight from the result cache when possible;
    misses are submitted to the pool (interactive lane by default, so a
    human query preempts any bulk sweep at chunk granularity) and the
    completed result is committed to the cache from the supervisor
    thread — the same parent-side commit discipline as the engines.
    Saturation surfaces as ``{"ok": false, "error": "overloaded: ..."}``
    rather than unbounded queueing.
    """

    def __init__(self, pool, cache, length=DEFAULT_LENGTH,
                 warmup=DEFAULT_WARMUP, host="127.0.0.1", port=0):
        self.pool = pool
        self.cache = cache
        self.length = length
        self.warmup = warmup
        self.host = host
        self.port = port
        self.server = None
        self._counter = 0

    def _config_for(self, request):
        factory = baseline_2x if request.get("core_2x") else baseline
        overrides = {}
        if request.get("rfp"):
            overrides["rfp"] = {"enabled": True}
        return factory(**overrides)

    async def _run_request(self, request):
        workload = request.get("workload")
        if not isinstance(workload, str) or not workload:
            return {"ok": False, "error": "run requires a workload name"}
        config = self._config_for(request)
        length = int(request.get("length", self.length))
        warmup = int(request.get("warmup", self.warmup))
        lane = request.get("lane", "interactive")
        key = self.cache.key(workload, config, length, warmup)
        cached = self.cache.get(key)
        if cached is not None:
            return {"ok": True, "source": "cache", "result": cached.data}
        loop = asyncio.get_running_loop()
        future = loop.create_future()
        self._counter += 1
        pj = _PendingJob(key, (workload, config, length, warmup, None),
                         self._counter, None)

        def _done(outcome):
            # Supervisor thread: commit, then resolve the asyncio future.
            if outcome[0] == "ok":
                from repro.sim.runner import SimResult
                self.cache.put(key, SimResult(outcome[1]))
            loop.call_soon_threadsafe(future.set_result, outcome)

        try:
            self.pool.submit(pj, lane=lane, callback=_done)
        except PoolSaturated as exc:
            return {"ok": False, "error": "overloaded: %s" % exc}
        except ValueError as exc:
            return {"ok": False, "error": str(exc)}
        outcome = await future
        if outcome[0] == "ok":
            return {"ok": True, "source": "run", "result": outcome[1]}
        if outcome[0] == "failed":
            return {"ok": False, "error": "job failed (%s): %s"
                    % (outcome[1], (outcome[2] or "").strip()
                       .splitlines()[-1] if outcome[2] else "")}
        return {"ok": False, "error": "job aborted: %s" % (outcome[1],)}

    async def _respond(self, request):
        op = request.get("op")
        if op == "ping":
            return {"ok": True, "pong": True}
        if op == "stats":
            return {"ok": True, "stats": self.pool.stats()}
        if op == "run":
            return await self._run_request(request)
        return {"ok": False, "error": "unknown op %r" % (op,)}

    async def _handle(self, reader, writer):
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                try:
                    request = json.loads(line.decode("utf-8"))
                    if not isinstance(request, dict):
                        raise ValueError("request must be a JSON object")
                except ValueError as exc:
                    response = {"ok": False, "error": "bad request: %s" % exc}
                else:
                    response = await self._respond(request)
                writer.write((json.dumps(response, sort_keys=True) + "\n")
                             .encode("utf-8"))
                await writer.drain()
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            writer.close()

    async def start(self):
        """Bind and start serving; returns the bound (host, port)."""
        self.server = await asyncio.start_server(
            self._handle, self.host, self.port)
        return self.server.sockets[0].getsockname()[:2]

    async def serve_forever(self):
        address = await self.start()
        print("repro serve: listening on %s:%d (shards=%d)"
              % (address[0], address[1], self.pool.shards), flush=True)
        async with self.server:
            await self.server.serve_forever()
