"""Command-line interface: ``python -m repro <command>``.

Commands:
    run <workload>        simulate one workload, print IPC and RFP stats
    trace <workload>      simulate with event tracing, print pipeline view
    suite                 run a suite slice, print per-category speedups
    workloads             list the 65-workload suite
    storage               print Table 1's storage arithmetic
    params                print Table 2's core parameters
    cache-stats           report the on-disk result cache's size
    cache-clear           delete every cached simulation result
    checkpoint            manage the warm-state checkpoint store
    serve                 long-lived shard pool behind a JSON-lines TCP API
    chaos                 seeded fault-injection campaign, byte-identity bar
"""

import argparse
import json
import os
import sys

from repro.core.config import RFPConfig, baseline, baseline_2x
from repro.obs.export import dump_jsonl, pipeline_view, sort_events, write_jsonl
from repro.obs.tracer import TraceSpec, parse_cycle_range
from repro.rfp.storage import storage_report
from repro.sim.cache import default_cache
from repro.sim.checkpoint import CheckpointStore, checkpoints_env_disabled
from repro.sim.defaults import DEFAULT_LENGTH, DEFAULT_WARMUP
from repro.sim.experiments import suite_speedup
from repro.sim.parallel import (
    MANIFEST_VERSION,
    default_shards,
    format_failures,
    run_matrix,
)
from repro.sim.runner import simulate, simulate_sampled
from repro.stats.report import format_ipc_ci, format_table
from repro.workloads.suite import suite_table, workload_names


def _config_from_args(args):
    check = getattr(args, "check_invariants", None)
    if check is not None:
        # Through the environment, not a parameter: parallel workers and
        # every simulate() call in the process inherit the knob.
        os.environ["REPRO_CHECK_INVARIANTS"] = str(check)
    factory = baseline_2x if getattr(args, "core_2x", False) else baseline
    overrides = {}
    if getattr(args, "rfp", False):
        overrides["rfp"] = {"enabled": True}
    if getattr(args, "vp", None):
        overrides["vp"] = {"enabled": True, "kind": args.vp}
    if getattr(args, "fast_forward", None) is not None:
        overrides["fast_forward"] = args.fast_forward
    return factory(**overrides)


def _sampling_from_args(args):
    """The interval-sampling spec requested by --sample, or None."""
    if getattr(args, "sample", None) is None:
        return None
    spec = {"samples": args.sample}
    if getattr(args, "interval_length", None) is not None:
        spec["interval_length"] = args.interval_length
    if getattr(args, "ci_target", None) is not None:
        spec["ci_target"] = args.ci_target
    if getattr(args, "confidence", None) is not None:
        spec["confidence"] = args.confidence
    return spec


def cmd_run(args):
    config = _config_from_args(args)
    sampling = _sampling_from_args(args)

    def _simulate():
        if sampling is not None:
            return simulate_sampled(
                args.workload, config, length=args.length,
                warmup=args.warmup,
                batch_warm=getattr(args, "batch_warm", None),
                batch_detail=getattr(args, "batch_detail", None), **sampling
            )
        return simulate(args.workload, config, length=args.length,
                        warmup=args.warmup)

    if args.profile:
        import cProfile
        import pstats

        profiler = cProfile.Profile()
        profiler.enable()
        result = _simulate()
        profiler.disable()
        stats = pstats.Stats(profiler, stream=sys.stderr)
        stats.sort_stats("cumulative").print_stats(args.profile_limit)
        if args.profile_out:
            stats.dump_stats(args.profile_out)
            print("profile -> %s" % args.profile_out, file=sys.stderr)
    else:
        result = _simulate()
    rows = [
        ("workload", result.workload),
        ("category", result.category),
        ("config", config.name + (" +RFP" if args.rfp else "")
         + (" +VP:%s" % args.vp if args.vp else "")),
        ("IPC", format_ipc_ci(result.data)),
        ("cycles", str(result.data["cycles"])),
        ("instructions", str(result.data["instructions"])),
    ]
    if "sampling" in result.data:
        ci = result.data["ipc_ci"]
        rows.append(("intervals", "%d of %d planned"
                     % (ci["intervals_used"], ci["intervals_planned"])))
    if result.rfp is not None:
        rows += [
            ("RFP injected", "%.1f%% of loads" % (100 * result.rfp_fraction("injected"))),
            ("RFP executed", "%.1f%% of loads" % (100 * result.rfp_fraction("executed"))),
            ("RFP useful", "%.1f%% of loads" % (100 * result.coverage)),
        ]
    print(format_table(["metric", "value"], rows, title="simulation result"))
    return 0


def cmd_trace(args):
    config = _config_from_args(args)
    try:
        cycle_range = parse_cycle_range(args.cycles or "")
    except ValueError as exc:
        print("error: %s" % exc, file=sys.stderr)
        return 2
    # Collect the full event stream and window at render time, so the
    # pipeline view can still label rows whose rename fell outside the
    # requested cycle window.
    spec = TraceSpec(args.out, loads_only=(args.filter == "loads"))
    tracer = spec.build_tracer()
    result = simulate(args.workload, config, length=args.length,
                      warmup=args.warmup, tracer=tracer)
    events = sort_events(tracer.events)
    if args.format == "jsonl":
        if cycle_range is not None:
            lo, hi = cycle_range
            events = [e for e in events
                      if e["cycle"] >= lo
                      and (hi is None or e["cycle"] <= hi)]
        text = dump_jsonl(events)
    else:
        text = pipeline_view(events, cycle_range=cycle_range)
    if args.out:
        if args.format == "jsonl":
            write_jsonl(events, args.out)
        else:
            with open(args.out, "w") as handle:
                handle.write(text + "\n")
        print("%d events -> %s" % (len(events), args.out))
    else:
        print(text)
    obs = result.data.get("obs", {})
    load_use = obs.get("histograms", {}).get("load_to_use_latency")
    if load_use and load_use.get("count"):
        print("load-to-use latency: mean %.1f, p50 %d, p99 %d cycles"
              % (load_use["mean"], load_use["p50"], load_use["p99"]),
              file=sys.stderr)
    return 0


def cmd_suite(args):
    config = _config_from_args(args)
    sampling = _sampling_from_args(args)
    names = workload_names()[: args.num] if args.num else workload_names()
    base_config = baseline() if not args.core_2x else baseline_2x()
    print("Running %s workloads under %s..."
          % (args.num or "all", config.name))
    # One engine over the full (config x workload) matrix: the baseline and
    # feature runs share workers instead of draining sequentially.
    (base, feature), report = run_matrix(
        [base_config, config], names, args.length, args.warmup,
        max_workers=args.jobs, job_timeout=args.job_timeout,
        retries=args.retries, keep_going=args.keep_going,
        sampling=sampling, batch_warm=getattr(args, "batch_warm", None),
        batch_detail=getattr(args, "batch_detail", None),
        shards=getattr(args, "shards", None),
    )
    _, per_cat, overall = suite_speedup(feature, base)
    rows = [(cat, "%+.2f%%" % ((v - 1) * 100)) for cat, v in per_cat.items()]
    if per_cat:
        rows.append(("ALL (geomean)", "%+.2f%%" % ((overall - 1) * 100)))
    print(format_table(["category", "speedup vs baseline"], rows))
    if sampling is not None:
        ipc_rows = [
            (name, format_ipc_ci(base[name].data), format_ipc_ci(feature[name].data))
            for name in names if name in base and name in feature
        ]
        print(format_table(["workload", "baseline IPC", "%s IPC" % config.name],
                           ipc_rows, title="sampled IPC (mean ± CI)"))
    print(report.format())
    if args.resume:
        print("resume: %d job(s) served from the cache, %d simulated"
              % (report.cache_hits, report.jobs_simulated))
    if report.failures:
        print(format_failures(report.failures), file=sys.stderr)
    if args.out:
        # Stable per-workload dump: the CI determinism job diffs the file
        # produced by --jobs 1 against --jobs 4 byte for byte.  Failed
        # cells (keep-going) are simply absent from their config's map;
        # the manifest names them.  A healthy run always writes
        # ``"failures": []`` so the bytes stay deterministic.
        payload = {
            "baseline": {name: base[name].as_dict()
                         for name in names if name in base},
            "feature": {name: feature[name].as_dict()
                        for name in names if name in feature},
            "failures": report.failures,
            "manifest_version": MANIFEST_VERSION,
        }
        with open(args.out, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print("wrote %s" % args.out)
    if report.drained:
        # SIGTERM graceful drain: in-flight chunks finished and were
        # journaled, queued jobs were aborted into the manifest.
        print("suite: drained after SIGTERM (%d job(s) aborted)"
              % sum(1 for f in report.failures
                    if f.get("classification") == "aborted"),
              file=sys.stderr)
        return 4
    return 3 if report.jobs_failed else 0


def cmd_cache_stats(_args):
    stats = default_cache().stats()
    rows = [
        ("directory", stats["directory"]),
        ("entries", str(stats["entries"])),
        ("size", "%.1f KB" % (stats["bytes"] / 1024.0)),
    ]
    print(format_table(["metric", "value"], rows, title="result cache"))
    return 0


def cmd_cache_clear(_args):
    removed = default_cache().clear()
    print("removed %d cached result%s" % (removed, "" if removed == 1 else "s"))
    return 0


def cmd_checkpoint(args):
    # Operate on the store even when REPRO_CHECKPOINTS=0 disables its use
    # by the runner — maintenance must work on a disabled store too.
    store = CheckpointStore()
    if args.action == "list":
        paths = store.entry_paths()
        for path in paths:
            name = os.path.basename(path)[: -len(".ckpt.json")]
            print("%s  %.1f KB" % (name, os.path.getsize(path) / 1024.0))
        print("%d checkpoint%s in %s"
              % (len(paths), "" if len(paths) == 1 else "s", store.directory))
    elif args.action == "stats":
        stats = store.stats()
        # stats() validates every entry and evicts corrupt ones first,
        # so the entries/size rows are post-eviction totals — a corrupt
        # entry shows up under "corrupt evicted", never in both.
        rows = [
            ("directory", stats["directory"]),
            ("entries", str(stats["entries"])),
            ("size", "%.1f KB" % (stats["bytes"] / 1024.0)),
            ("corrupt evicted", str(stats["corrupt_evicted"])),
            ("enabled", "no (REPRO_CHECKPOINTS)"
             if checkpoints_env_disabled() else "yes"),
        ]
        print(format_table(["metric", "value"], rows,
                           title="warm-state checkpoint store"))
    elif args.action == "clear":
        removed = store.clear()
        print("removed %d checkpoint%s" % (removed, "" if removed == 1 else "s"))
    elif args.action == "prune":
        if args.max_bytes is None:
            print("error: prune requires --max-bytes", file=sys.stderr)
            return 2
        removed = store.prune(args.max_bytes)
        print("pruned %d checkpoint%s (LRU) to fit %d bytes"
              % (removed, "" if removed == 1 else "s", args.max_bytes))
    return 0


def cmd_serve(args):
    """Long-lived simulation service over a supervised shard pool."""
    import asyncio

    from repro.sim.cache import default_cache
    from repro.sim.scheduler import ShardPool, SweepService

    shards = args.shards or default_shards() or 2
    pool = ShardPool(shards, job_timeout=args.job_timeout,
                     retries=args.retries, keep_going=True)
    pool.start()
    service = SweepService(pool, default_cache(), length=args.length,
                           warmup=args.warmup, host=args.host,
                           port=args.port)
    try:
        asyncio.run(service.serve_forever())
    except KeyboardInterrupt:
        print("repro serve: shutting down", file=sys.stderr)
    finally:
        pool.shutdown()
    return 0


def cmd_chaos(args):
    from repro.sim import chaos

    if args.sweep_child:
        return chaos.run_sweep(args)
    if args.seed is None:
        args.seed = chaos.DEFAULT_SEED
    return chaos.run_campaign(args)


def cmd_workloads(_args):
    rows = [(category, str(count), names)
            for category, count, names in suite_table()]
    print(format_table(["category", "count", "workloads"], rows,
                       title="Table 3: the 65-workload suite"))
    return 0


def cmd_storage(args):
    report = storage_report(RFPConfig(pt_entries=args.pt_entries))
    rows = [(name, fields, "%d b" % bits) for name, fields, bits in report["rows"]]
    rows.append(("PT total", "", "%.2f KB" % report["pt_kilobytes"]))
    rows.append(("everything", "", "%.2f KB" % report["total_kilobytes"]))
    print(format_table(["structure", "fields", "storage"], rows,
                       title="Table 1: RFP storage"))
    return 0


def cmd_params(args):
    config = baseline_2x() if args.core_2x else baseline()
    print(format_table(["parameter", "value"], config.table2_rows(),
                       title="Table 2: %s core parameters" % config.name))
    return 0


def build_parser():
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    def add_sim_args(p):
        p.add_argument("--length", type=int, default=DEFAULT_LENGTH,
                       help="trace length in instructions")
        p.add_argument("--warmup", type=int, default=DEFAULT_WARMUP,
                       help="instructions excluded from measurement")
        p.add_argument("--rfp", action="store_true", help="enable RFP")
        p.add_argument("--vp", choices=["eves", "dlvp", "composite", "epp"],
                       help="enable a value predictor")
        p.add_argument("--core-2x", action="store_true",
                       help="use the up-scaled Baseline-2x core")
        p.add_argument("--ff", dest="fast_forward", action="store_true",
                       default=None,
                       help="functionally fast-forward the warmup window "
                            "(default; two-speed simulation)")
        p.add_argument("--no-ff", dest="fast_forward", action="store_false",
                       help="simulate the warmup window in full detail")
        p.add_argument("--check-invariants", nargs="?", const=64, type=int,
                       default=None, metavar="K",
                       help="sweep the microarchitectural invariant net "
                            "every K cycles (default 64; 0 disables)")

    def add_sampling_args(p):
        p.add_argument("--sample", type=int, default=None, metavar="K",
                       help="SMARTS-style interval sampling: measure K "
                            "short detailed intervals (warm state restored "
                            "from the checkpoint store) and report mean "
                            "IPC ± CI instead of one long detailed window")
        p.add_argument("--interval-length", type=int, default=None,
                       metavar="N",
                       help="measured instructions per interval (default: "
                            "the full inter-interval stride)")
        p.add_argument("--ci-target", type=float, default=None, metavar="P",
                       help="adaptive early stop: finish once the CI "
                            "half-width is below P x mean (e.g. 0.01 "
                            "for 1%%)")
        p.add_argument("--confidence", type=float, default=None,
                       choices=[0.90, 0.95, 0.99],
                       help="confidence level for the IPC CI (default 0.95)")
        p.add_argument("--batch-warm", action="store_true", default=None,
                       help="write missing interval checkpoints through "
                            "the batched SoA warm engine (one lockstep "
                            "pass per trace instead of one scalar pass "
                            "per config; bit-exact with the scalar "
                            "warmer).  Default: REPRO_BATCH_WARM")
        p.add_argument("--batch-detail", action="store_true", default=None,
                       help="run the measurement intervals themselves "
                            "through the batched detailed core (same-trace "
                            "intervals advance as lockstep lanes; per-lane "
                            "results bit-exact with the scalar core; VP/"
                            "tracing configs fall back to scalar).  "
                            "Default: REPRO_BATCH_DETAIL")

    run_parser = sub.add_parser("run", help="simulate one workload")
    run_parser.add_argument("workload")
    run_parser.add_argument("--profile", action="store_true",
                            help="run under cProfile and print a "
                                 "cumulative-time report to stderr")
    run_parser.add_argument("--profile-limit", type=int, default=30,
                            metavar="N",
                            help="rows in the --profile report (default 30)")
    run_parser.add_argument("--profile-out", default=None, metavar="FILE",
                            help="also dump raw --profile stats to FILE "
                                 "(snakeviz/pstats compatible)")
    add_sim_args(run_parser)
    add_sampling_args(run_parser)
    run_parser.set_defaults(func=cmd_run)

    trace_parser = sub.add_parser(
        "trace", help="simulate one workload with event tracing")
    trace_parser.add_argument("workload")
    trace_parser.add_argument("--cycles", default=None, metavar="A:B",
                              help="restrict events to a cycle window "
                                   "(either end optional)")
    trace_parser.add_argument("--filter", choices=["loads"], default=None,
                              help="per-instruction events for loads only")
    trace_parser.add_argument("--format", choices=["pipeline", "jsonl"],
                              default="pipeline",
                              help="pipeline text view or raw JSONL events")
    trace_parser.add_argument("-o", "--out", default=None,
                              help="write to a file instead of stdout")
    add_sim_args(trace_parser)
    trace_parser.set_defaults(func=cmd_trace)

    suite_parser = sub.add_parser("suite", help="run a suite slice")
    suite_parser.add_argument("-n", "--num", type=int, default=None,
                              help="only the first N workloads")
    suite_parser.add_argument("-j", "--jobs", type=int, default=None,
                              help="worker processes (default: REPRO_JOBS "
                                   "or the CPU count)")
    suite_parser.add_argument("--out", default=None,
                              help="write per-workload result JSON to a file")
    suite_parser.add_argument("--keep-going", action="store_true",
                              help="record terminal job failures in a "
                                   "manifest and finish the rest of the "
                                   "matrix (exit code 3 when any job "
                                   "failed) instead of aborting")
    suite_parser.add_argument("--resume", action="store_true",
                              help="report how much of the matrix was "
                                   "served from the cache — with the "
                                   "incremental commit this makes a rerun "
                                   "after an interruption simulate only "
                                   "the unfinished jobs")
    suite_parser.add_argument("--job-timeout", type=float, default=None,
                              metavar="SECONDS",
                              help="watchdog deadline per job attempt "
                                   "(default derived from --length; 0 "
                                   "disables)")
    suite_parser.add_argument("--retries", type=int, default=None,
                              metavar="N",
                              help="retries for crashed or hung jobs "
                                   "(default REPRO_JOB_RETRIES or 2)")
    suite_parser.add_argument("--shards", type=int, default=None,
                              metavar="N",
                              help="run jobs through N supervised "
                                   "long-lived shard processes "
                                   "(heartbeat health checks, quarantine "
                                   "and respawn) instead of one worker "
                                   "process per job.  Default: "
                                   "REPRO_SHARDS, else worker-per-job")
    add_sim_args(suite_parser)
    add_sampling_args(suite_parser)
    suite_parser.set_defaults(func=cmd_suite)

    serve_parser = sub.add_parser(
        "serve", help="long-lived simulation service (JSON lines over TCP) "
                      "backed by a supervised shard pool")
    serve_parser.add_argument("--host", default="127.0.0.1")
    serve_parser.add_argument("--port", type=int, default=8731)
    serve_parser.add_argument("--shards", type=int, default=None,
                              help="shard processes (default REPRO_SHARDS "
                                   "or 2)")
    serve_parser.add_argument("--length", type=int, default=DEFAULT_LENGTH)
    serve_parser.add_argument("--warmup", type=int, default=DEFAULT_WARMUP)
    serve_parser.add_argument("--job-timeout", type=float, default=None)
    serve_parser.add_argument("--retries", type=int, default=None)
    serve_parser.set_defaults(func=cmd_serve)

    chaos_parser = sub.add_parser(
        "chaos", help="seeded fault-injection campaign over a sharded "
                      "sweep; asserts byte-identical convergence")
    chaos_parser.add_argument("--seed", type=int, default=None,
                              help="campaign seed (default: chaos module's "
                                   "pinned DEFAULT_SEED)")
    chaos_parser.add_argument("--dir", default="benchmarks/.chaos",
                              help="campaign working directory")
    chaos_parser.add_argument("--fresh", action="store_true",
                              help="delete the campaign directory first")
    chaos_parser.add_argument("-n", "--num", type=int, default=8,
                              help="workloads in the sweep (x 3 configs)")
    chaos_parser.add_argument("--shards", type=int, default=3)
    chaos_parser.add_argument("--kills", type=int, default=3,
                              help="kill_shard launches")
    chaos_parser.add_argument("--hangs", type=int, default=1,
                              help="hang_heartbeat launches")
    chaos_parser.add_argument("--torn", type=int, default=1,
                              help="torn_write launches")
    chaos_parser.add_argument("--sigkills", type=int, default=1,
                              help="mid-commit SIGKILL launches")
    chaos_parser.add_argument("--length", type=int, default=6000)
    chaos_parser.add_argument("--warmup", type=int, default=3000)
    chaos_parser.add_argument("--launch-timeout", type=float, default=300,
                              metavar="SECONDS",
                              help="hard deadline per launch; a launch "
                                   "that neither exits nor dies by then "
                                   "fails the campaign")
    chaos_parser.add_argument("--sample", type=int, default=2,
                              help="interval samples per cell (exercises "
                                   "the checkpoint store; 0 disables)")
    chaos_parser.add_argument("--out", default=None, help=argparse.SUPPRESS)
    chaos_parser.add_argument("--sweep-child", action="store_true",
                              help=argparse.SUPPRESS)
    chaos_parser.set_defaults(func=cmd_chaos)

    cache_stats_parser = sub.add_parser(
        "cache-stats", help="report the result cache's on-disk size")
    cache_stats_parser.set_defaults(func=cmd_cache_stats)

    cache_clear_parser = sub.add_parser(
        "cache-clear", help="delete every cached simulation result")
    cache_clear_parser.set_defaults(func=cmd_cache_clear)

    checkpoint_parser = sub.add_parser(
        "checkpoint", help="manage the warm-state checkpoint store")
    checkpoint_parser.add_argument(
        "action", choices=["list", "stats", "clear", "prune"],
        help="list entries, print store stats, delete everything, or "
             "LRU-evict down to --max-bytes")
    checkpoint_parser.add_argument(
        "--max-bytes", type=int, default=None,
        help="size budget for prune (least-recently-used entries go first)")
    checkpoint_parser.set_defaults(func=cmd_checkpoint)

    wl_parser = sub.add_parser("workloads", help="list the suite")
    wl_parser.set_defaults(func=cmd_workloads)

    storage_parser = sub.add_parser("storage", help="Table 1 storage")
    storage_parser.add_argument("--pt-entries", type=int, default=1024)
    storage_parser.set_defaults(func=cmd_storage)

    params_parser = sub.add_parser("params", help="Table 2 parameters")
    params_parser.add_argument("--core-2x", action="store_true")
    params_parser.set_defaults(func=cmd_params)
    return parser


def main(argv=None):
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
